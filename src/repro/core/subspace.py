"""Output model of MMDR: elliptical subspaces plus an outlier set.

`Generate Ellipsoid` discovers elliptical clusters; `Dimensionality
Optimization` fixes each cluster's retained dimensionality ``d_r`` and weeds
out points whose ``ProjDist_r`` exceeds β.  What remains is exactly what §5
needs to build the extended iDistance:

* per subspace — the centroid and principal components (the search-time
  array), and the covariance matrix, Mahalanobis radius and retained
  dimensionality (the dynamic-insertion array);
* one :class:`OutlierSet` that stays in the original space and is indexed as
  "a subspace in its original dimensionality".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["EllipticalSubspace", "OutlierSet", "MMDRStats", "MMDRModel"]


@dataclass
class EllipticalSubspace:
    """One reduced-dimensionality cluster in its own axis system.

    Attributes
    ----------
    subspace_id:
        Position of this subspace in the parent model.
    mean:
        ``(d,)`` cluster centroid in the original space; projections are
        centered on it, so the centroid of the reduced space is the origin.
    basis:
        ``(d, d_r)`` orthonormal retained principal components (the
        :math:`\\Phi_{d_r}` of Definition 3.3, fitted locally).
    covariance:
        ``(d, d)`` cluster shape in the original space, kept for dynamic
        insertion (§5's third data structure).
    member_ids:
        Indices (into the fitted dataset) of the points assigned here.
    projections:
        ``(len(member_ids), d_r)`` reduced representations of the members.
    discovered_at_dim:
        The ``s_dim`` level at which `Generate Ellipsoid` accepted this
        cluster (before Dimensionality Optimization shrank it to ``d_r``).
    mpe:
        Mean ProjDist_r of the final membership at ``d_r``.
    ellipticity:
        Generalized ellipticity (Definition 3.4) of the final membership.
    """

    subspace_id: int
    mean: np.ndarray
    basis: np.ndarray
    covariance: np.ndarray
    member_ids: np.ndarray
    projections: np.ndarray
    discovered_at_dim: int
    mpe: float
    ellipticity: float

    def __post_init__(self) -> None:
        self.mean = np.asarray(self.mean, dtype=np.float64)
        # Contiguous, always: a column-sliced eigenvector view takes a
        # different BLAS path than the contiguous copy a pickle round trip
        # produces, and the 1-ulp drift breaks snapshot/recovery
        # bit-identity checks.
        self.basis = np.ascontiguousarray(self.basis, dtype=np.float64)
        self.member_ids = np.asarray(self.member_ids, dtype=np.int64)
        # C-contiguous at construction so the distance kernels (which now
        # reject non-contiguous input instead of silently copying) never
        # pay a per-query recontiguation on this hot array.
        self.projections = np.ascontiguousarray(
            self.projections, dtype=np.float64
        )
        if self.basis.ndim != 2:
            raise ValueError("basis must be a (d, d_r) matrix")
        if self.projections.shape != (self.member_ids.size, self.reduced_dim):
            raise ValueError(
                f"projections shape {self.projections.shape} does not match "
                f"{self.member_ids.size} members x d_r={self.reduced_dim}"
            )
        norms = (
            np.linalg.norm(self.projections, axis=1)
            if self.member_ids.size
            else np.zeros(0)
        )
        #: Distance from the reduced-space origin to the farthest member —
        #: the subspace radius the iDistance search prunes with.
        self.max_radius: float = float(norms.max()) if norms.size else 0.0
        #: ... and to the nearest member (iDistance's inner bound).
        self.min_radius: float = float(norms.min()) if norms.size else 0.0

    @property
    def original_dim(self) -> int:
        """Original dimensionality ``d``."""
        return self.basis.shape[0]

    @property
    def reduced_dim(self) -> int:
        """Retained dimensionality ``d_r``."""
        return self.basis.shape[1]

    @property
    def size(self) -> int:
        return self.member_ids.size

    def project(self, points: np.ndarray) -> np.ndarray:
        """Map original-space point(s) into this subspace's axis system."""
        arr = np.asarray(points, dtype=np.float64)
        return (arr - self.mean) @ self.basis

    def proj_dist_r(self, points: np.ndarray) -> np.ndarray:
        """ProjDist_r of arbitrary point(s) w.r.t. this subspace.

        Computed as the reconstruction residual, which equals the norm along
        the eliminated components because the basis is orthonormal.
        """
        arr = np.atleast_2d(np.asarray(points, dtype=np.float64))
        centered = arr - self.mean
        retained = centered @ self.basis
        residual = centered - retained @ self.basis.T
        return np.linalg.norm(residual, axis=1)

    def reconstruct(self, projections: np.ndarray) -> np.ndarray:
        """Lossy inverse of :meth:`project`."""
        arr = np.asarray(projections, dtype=np.float64)
        return arr @ self.basis.T + self.mean


@dataclass
class OutlierSet:
    """Points that no subspace represents within β; kept at full ``d``."""

    member_ids: np.ndarray
    points: np.ndarray

    def __post_init__(self) -> None:
        self.member_ids = np.asarray(self.member_ids, dtype=np.int64)
        self.points = np.ascontiguousarray(
            np.atleast_2d(np.asarray(self.points, dtype=np.float64))
        )
        if self.member_ids.size == 0:
            self.points = self.points.reshape(0, self.points.shape[-1])
        if self.points.shape[0] != self.member_ids.size:
            raise ValueError(
                f"{self.member_ids.size} ids but {self.points.shape[0]} points"
            )
        #: Centroid used as the outlier partition's iDistance reference point.
        self.centroid: np.ndarray = (
            self.points.mean(axis=0)
            if self.member_ids.size
            else np.zeros(self.points.shape[1])
        )
        norms = (
            np.linalg.norm(self.points - self.centroid, axis=1)
            if self.member_ids.size
            else np.zeros(0)
        )
        self.max_radius: float = float(norms.max()) if norms.size else 0.0

    @property
    def size(self) -> int:
        return self.member_ids.size


@dataclass
class MMDRStats:
    """Bookkeeping from one MMDR fit (feeds the scalability figures)."""

    fit_seconds: float = 0.0
    levels_used: List[int] = field(default_factory=list)
    clustering_inner_iterations: int = 0
    clustering_outer_iterations: int = 0
    distance_computations: int = 0
    streams_processed: int = 0


@dataclass
class MMDRModel:
    """A fitted MMDR reduction: subspaces, outliers, and fit statistics."""

    subspaces: List[EllipticalSubspace]
    outliers: OutlierSet
    n_points: int
    dimensionality: int
    stats: MMDRStats = field(default_factory=MMDRStats)

    @property
    def n_subspaces(self) -> int:
        return len(self.subspaces)

    def reduced_dims(self) -> List[int]:
        """Per-subspace optimal dimensionalities (each can differ)."""
        return [s.reduced_dim for s in self.subspaces]

    def labels(self) -> np.ndarray:
        """Per-point subspace id, with ``-1`` for outliers."""
        labels = np.full(self.n_points, -1, dtype=np.int64)
        for subspace in self.subspaces:
            labels[subspace.member_ids] = subspace.subspace_id
        return labels

    def coverage(self) -> float:
        """Fraction of points represented by some subspace (non-outliers)."""
        if self.n_points == 0:
            return 0.0
        covered = sum(s.size for s in self.subspaces)
        return covered / self.n_points

    def assign(self, point: np.ndarray, beta: float) -> Tuple[int, Optional[np.ndarray]]:
        """Dynamic-insertion routing (§5): the subspace with the smallest
        ProjDist_r hosts the point if that distance is within β, otherwise
        the point is an outlier.

        Returns ``(subspace_id, projection)`` or ``(-1, None)``.
        """
        point = np.asarray(point, dtype=np.float64)
        best_id, best_dist = -1, np.inf
        for subspace in self.subspaces:
            dist = float(subspace.proj_dist_r(point)[0])
            if dist < best_dist:
                best_id, best_dist = subspace.subspace_id, dist
        if best_id >= 0 and best_dist <= beta:
            return best_id, self.subspaces[best_id].project(point)
        return -1, None

    def summary(self) -> str:
        """Human-readable inventory (used by examples and docs)."""
        lines = [
            f"MMDRModel: {self.n_points} points, d={self.dimensionality}, "
            f"{self.n_subspaces} subspaces, {self.outliers.size} outliers "
            f"({self.coverage():.1%} coverage)"
        ]
        for s in self.subspaces:
            lines.append(
                f"  subspace {s.subspace_id}: {s.size} pts, "
                f"d_r={s.reduced_dim} (found at s_dim={s.discovered_at_dim}), "
                f"MPE={s.mpe:.4f}, e={s.ellipticity:.2f}, "
                f"radius=[{s.min_radius:.3f}, {s.max_radius:.3f}]"
            )
        return "\n".join(lines)
