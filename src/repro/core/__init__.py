"""MMDR core — the paper's primary contribution.

* :class:`MMDRConfig` — Table 1 parameters.
* :class:`MMDR` — `Generate Ellipsoid` + `Dimensionality Optimization`
  (Figure 4).
* :class:`ScalableMMDR` — the §4.3 data-stream variant for datasets larger
  than the buffer.
* :class:`MMDRModel` / :class:`EllipticalSubspace` / :class:`OutlierSet` —
  the fitted reduction consumed by the extended iDistance.
* :mod:`~repro.core.geometry` — Definitions 3.1/3.4/3.5 (ellipticity,
  projection distances, MPE).
"""

from .config import DEFAULT_CONFIG, MMDRConfig
from .geometry import (
    ProjectionDistances,
    ellipticity,
    mean_projection_error,
    projection_distances,
)
from .mmdr import MMDR, CandidateEllipsoid
from .scalable import EllipsoidArrayEntry, ScalableMMDR
from .subspace import EllipticalSubspace, MMDRModel, MMDRStats, OutlierSet

__all__ = [
    "DEFAULT_CONFIG",
    "MMDR",
    "CandidateEllipsoid",
    "EllipsoidArrayEntry",
    "EllipticalSubspace",
    "MMDRConfig",
    "MMDRModel",
    "MMDRStats",
    "OutlierSet",
    "ProjectionDistances",
    "ScalableMMDR",
    "ellipticity",
    "mean_projection_error",
    "projection_distances",
]
