"""Projection distances, MPE, and ellipticity (Definitions 3.1, 3.4, 3.5).

Naming is pinned down once here because the paper's prose swaps terms in one
place (see DESIGN.md):

* ``proj_dist_r`` — distance from a point P to its projection P' on the
  **retained** subspace = the norm of P's coordinates along the *eliminated*
  components = the information **lost** by the reduction.  MPE (Definition
  3.5) is the mean of this quantity, and β (Table 1) thresholds it.
* ``proj_dist_e`` — distance from P to its projection P'' on the
  **eliminated** subspace = the norm of P's coordinates along the *retained*
  components = the information **kept**.

For an elongated cluster the retained components carry the large coordinates,
so ``max(proj_dist_e)`` plays the role of the major radius ``b`` and
``max(proj_dist_r)`` the minor radius ``a``; Definition 3.4's generalized
ellipticity ``e = (b - a) / a`` then reduces to Definition 3.1 in 2-D.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg.pca import PCAModel

__all__ = [
    "ProjectionDistances",
    "projection_distances",
    "mean_projection_error",
    "ellipticity",
]


@dataclass(frozen=True)
class ProjectionDistances:
    """Both projection distances for a batch of points at a given ``d_r``."""

    proj_dist_r: np.ndarray  # information lost (eliminated-component norms)
    proj_dist_e: np.ndarray  # information kept (retained-component norms)

    @property
    def mpe(self) -> float:
        """Mean ProjDist_r Error (Definition 3.5)."""
        if self.proj_dist_r.size == 0:
            return 0.0
        return float(self.proj_dist_r.mean())

    @property
    def ellipticity(self) -> float:
        """Generalized ellipticity of the batch (Definition 3.4)."""
        return ellipticity(self.proj_dist_r, self.proj_dist_e)


def projection_distances(
    data: np.ndarray, model: PCAModel, n_components: int
) -> ProjectionDistances:
    """Compute both projection distances for ``(n, d)`` points.

    Because the PCA basis is orthonormal, the two distances are simply the
    norms of the centered point's coordinates split at column
    ``n_components``; no explicit projection matrices are materialized.
    """
    arr = np.atleast_2d(np.asarray(data, dtype=np.float64))
    if arr.shape[1] != model.dimensionality:
        raise ValueError(
            f"points have dimensionality {arr.shape[1]}, "
            f"PCA model expects {model.dimensionality}"
        )
    centered = arr - model.mean
    coords = centered @ model.components
    retained = coords[:, :n_components]
    eliminated = coords[:, n_components:]
    return ProjectionDistances(
        proj_dist_r=np.linalg.norm(eliminated, axis=1),
        proj_dist_e=np.linalg.norm(retained, axis=1),
    )


def mean_projection_error(
    data: np.ndarray, model: PCAModel, n_components: int
) -> float:
    """MPE (Definition 3.5): average information lost at ``n_components``.

    This is the quantity `Generate Ellipsoid` compares against MaxMPE and
    Dimensionality Optimization tracks while shrinking ``d_r``.
    """
    return projection_distances(data, model, n_components).mpe


def ellipticity(
    proj_dist_r: np.ndarray, proj_dist_e: np.ndarray
) -> float:
    """Generalized ellipticity ``e = (max PDe - max PDr) / max PDr``.

    A perfectly flat cluster (nothing lost, ``max PDr == 0``) has unbounded
    ellipticity; we return ``inf`` for that case, and ``0.0`` for an empty or
    fully degenerate batch where both radii vanish.
    """
    proj_dist_r = np.asarray(proj_dist_r, dtype=np.float64)
    proj_dist_e = np.asarray(proj_dist_e, dtype=np.float64)
    if proj_dist_r.size == 0 or proj_dist_e.size == 0:
        return 0.0
    minor = float(proj_dist_r.max())
    major = float(proj_dist_e.max())
    if minor <= 0.0:
        return float("inf") if major > 0.0 else 0.0
    return (major - minor) / minor
