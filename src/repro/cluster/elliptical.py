"""Elliptical k-means (Sung & Poggio) with the paper's §4.2 optimizations.

This is the clustering engine inside MMDR's `Generate Ellipsoid` step.  It is
the nested-loop algorithm the paper describes in §2:

* the **inner loop** is k-means under the *normalized Mahalanobis distance*
  with each cluster's covariance held fixed — assignments and centroids move,
  shapes do not;
* the **outer loop** refits each cluster's covariance matrix from its current
  members and re-enters the inner loop;
* both loops stop when no point changes membership.

Using the normalized distance (Definition 3.2) rather than the raw quadratic
form prevents a large elongated cluster from swallowing its smaller
neighbours, because the ``log |C|`` volume penalty charges big ellipsoids for
their size.

The two §4.2 cost optimizations are implemented and individually switchable
so the ablation benchmarks can price them:

* ``use_lookup``: a :class:`~repro.cluster.lookup.CentroidLookupTable` caches
  each point's ``k`` closest centroid IDs; inner iterations only evaluate
  those candidates, and a point's cache line is refreshed only when its
  membership changes.
* ``use_activity``: points whose membership has survived
  ``activity_threshold`` consecutive iterations become *inactive* and skip
  distance computation until the number of clusters changes (empty clusters
  are dropped, which is the cluster-count change that reactivates everyone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..linalg.mahalanobis import (
    ClusterShape,
    Normalization,
    batch_normalized_mahalanobis,
)
from ..obs.tracer import NULL_TRACER, Tracer, ensure_tracer
from ..storage.metrics import CostCounters
from .kmeans import kmeans_pp_seeds
from .lookup import CentroidLookupTable

__all__ = ["EllipticalKMeans", "EllipticalKMeansResult"]


@dataclass
class EllipticalKMeansResult:
    """Outcome of one elliptical k-means run.

    ``labels[i]`` indexes ``shapes``; clusters that emptied out during the
    run have been dropped, so ``len(shapes)`` can be below the requested
    cluster count.  ``converged`` is True when a full outer round finished
    with zero membership changes before the iteration caps.
    """

    labels: np.ndarray
    shapes: List[ClusterShape]
    inner_iterations: int
    outer_iterations: int
    converged: bool
    final_inactive_fraction: float = 0.0

    @property
    def n_clusters(self) -> int:
        return len(self.shapes)

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the points assigned to ``cluster``."""
        return np.flatnonzero(self.labels == cluster)

    @property
    def centroids(self) -> np.ndarray:
        """``(n_clusters, d)`` stack of cluster centroids."""
        return np.vstack([s.centroid for s in self.shapes])


class EllipticalKMeans:
    """Configurable elliptical k-means estimator.

    Parameters mirror Table 1 where applicable: ``lookup_k`` defaults to 3
    and ``activity_threshold`` to 10 (the value §6.3 uses).
    """

    def __init__(
        self,
        n_clusters: int,
        normalization: Normalization = "gaussian",
        use_lookup: bool = True,
        lookup_k: int = 3,
        use_activity: bool = True,
        activity_threshold: int = 10,
        max_outer_iterations: int = 15,
        max_inner_iterations: int = 30,
        n_init: int = 1,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if lookup_k < 1:
            raise ValueError(f"lookup_k must be >= 1, got {lookup_k}")
        if max_outer_iterations < 1 or max_inner_iterations < 1:
            raise ValueError("iteration caps must be >= 1")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        self.n_clusters = n_clusters
        self.normalization = normalization
        self.use_lookup = use_lookup
        self.lookup_k = lookup_k
        self.use_activity = use_activity
        self.activity_threshold = activity_threshold
        self.max_outer_iterations = max_outer_iterations
        self.max_inner_iterations = max_inner_iterations
        #: Independent restarts; the run with the lowest total normalized
        #: distance wins.  Default 1: the NLL criterion is a poor model
        #: selector on data with near-singular directions (hugely negative
        #: log-determinants make degenerate thin clusters look optimal), so
        #: restarts are opt-in for dense, well-conditioned data only.
        self.n_init = n_init

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    def fit(
        self,
        data: np.ndarray,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
        tracer: Optional[Tracer] = None,
    ) -> EllipticalKMeansResult:
        """Cluster ``(n, d)`` data; all randomness flows through ``rng``.

        Runs ``n_init`` independent restarts and keeps the solution with
        the lowest total normalized Mahalanobis distance.  ``tracer``
        (optional) records a ``kmeans.fit`` span with nested per-iteration
        spans; it never influences the clustering itself.
        """
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n, d = data.shape
        if n == 0:
            raise ValueError("cannot cluster an empty dataset")
        tracer = ensure_tracer(tracer)
        best: Optional[EllipticalKMeansResult] = None
        best_cost = np.inf
        with tracer.span(
            "kmeans.fit",
            counters=counters,
            n_points=n,
            dims=d,
            n_clusters=self.n_clusters,
        ) as fit_span:
            for _ in range(self.n_init):
                result = self._fit_once(data, rng, counters, tracer)
                cost = self._total_cost(data, result, counters)
                if cost < best_cost:
                    best, best_cost = result, cost
            assert best is not None
            if tracer.enabled:
                fit_span.set(
                    inner_iterations=best.inner_iterations,
                    outer_iterations=best.outer_iterations,
                    converged=best.converged,
                    final_clusters=best.n_clusters,
                )
        return best

    def _total_cost(
        self,
        data: np.ndarray,
        result: EllipticalKMeansResult,
        counters: Optional[CostCounters],
    ) -> float:
        """Sum of members' normalized distances to their own cluster."""
        total = 0.0
        for cluster, shape in enumerate(result.shapes):
            members = result.members(cluster)
            if members.size == 0:
                continue
            total += float(
                shape.normalized_distance(
                    data[members], self.normalization, counters
                ).sum()
            )
        return total

    def _fit_once(
        self,
        data: np.ndarray,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> EllipticalKMeansResult:
        n, d = data.shape
        centroids = kmeans_pp_seeds(data, self.n_clusters, rng)
        # Seed shapes isotropically at the data's own scale so the first
        # assignment is a plain (scaled) Euclidean k-means step.
        scale = float(np.sqrt(max(data.var(axis=0).mean(), 1e-12)))
        shapes = [
            ClusterShape.spherical(c, radius=scale) for c in centroids
        ]

        labels = np.full(n, -1, dtype=np.int64)
        table = CentroidLookupTable(
            n_points=n,
            k=self.lookup_k,
            activity_threshold=(
                self.activity_threshold if self.use_activity else 2**62
            ),
        )

        total_inner = 0
        outer_round = 0
        converged = False
        for outer_round in range(1, self.max_outer_iterations + 1):
            # One span per outer round: inner assignment sweeps plus the
            # covariance refit, annotated with the activity-counter freeze
            # count so the §4.2 optimization's reach is visible per round.
            with tracer.span(
                "kmeans.outer_iteration",
                counters=counters,
                round=outer_round,
            ) as outer_span:
                labels, shapes, inner_done, outer_changes = self._inner_loop(
                    data, labels, shapes, table, counters, tracer
                )
                total_inner += inner_done
                if tracer.enabled:
                    frozen = n - int(np.count_nonzero(table.active_mask()))
                    outer_span.set(
                        inner_iterations=inner_done,
                        changes=outer_changes,
                        frozen_points=frozen,
                        clusters=len(shapes),
                    )
                    tracer.gauge("kmeans.frozen_points").set(frozen)
                    tracer.gauge("kmeans.frozen_fraction").set(
                        table.inactive_fraction
                    )
                if outer_changes == 0 and outer_round > 1:
                    converged = True
                    break
                refitted = self._refit_covariances(data, labels, shapes)
                if refitted is None:
                    # No cluster has enough mass to refit; keep shapes.
                    converged = True
                    break
                shapes = refitted
                table.invalidate()  # shapes moved: cached candidates stale

        return EllipticalKMeansResult(
            labels=labels,
            shapes=shapes,
            inner_iterations=total_inner,
            outer_iterations=outer_round,
            converged=converged,
            final_inactive_fraction=table.inactive_fraction,
        )

    # ------------------------------------------------------------------
    # inner k-means loop (fixed covariances)
    # ------------------------------------------------------------------

    def _inner_loop(
        self,
        data: np.ndarray,
        labels: np.ndarray,
        shapes: List[ClusterShape],
        table: CentroidLookupTable,
        counters: Optional[CostCounters],
        tracer: Tracer = NULL_TRACER,
    ):
        n = data.shape[0]
        total_changes = 0
        inner_done = 0
        for inner_done in range(1, self.max_inner_iterations + 1):
            active = (
                table.active_mask()
                if self.use_activity
                else np.ones(n, dtype=bool)
            )
            rows = np.flatnonzero(active)
            if rows.size == 0:
                break

            with tracer.span(
                "kmeans.inner_iteration",
                counters=counters,
                iteration=inner_done,
                active_points=int(rows.size),
            ) as inner_span:
                new_for_rows = self._assign(
                    data, rows, labels, shapes, table, counters
                )
                changed = new_for_rows != labels[rows]
                table.record_outcome(rows, changed)
                labels[rows] = new_for_rows
                n_changed = int(np.count_nonzero(changed))
                total_changes += n_changed

                labels, shapes, dropped = self._recentre(
                    data, labels, shapes
                )
                if dropped:
                    # Cluster count changed: reactivate every point.
                    table.reactivate_all()
                    table.invalidate()
                if tracer.enabled:
                    inner_span.set(changes=n_changed, dropped=dropped)
            if n_changed == 0 and not dropped:
                break
        return labels, shapes, inner_done, total_changes

    def _assign(
        self,
        data: np.ndarray,
        rows: np.ndarray,
        labels: np.ndarray,
        shapes: List[ClusterShape],
        table: CentroidLookupTable,
        counters: Optional[CostCounters],
    ) -> np.ndarray:
        """Best cluster for each row, honoring the lookup-table optimization."""
        cached = table.candidates_for(rows)
        has_cache = self.use_lookup and bool(np.all(cached[:, 0] >= 0))
        if not has_cache:
            full = self._distance_matrix(data[rows], shapes, counters)
            table.refresh(rows, full)
            return np.argmin(full, axis=1).astype(np.int64)

        m = rows.size
        best = np.full(m, np.inf)
        best_label = labels[rows].copy()
        for cluster in range(len(shapes)):
            mask = np.any(cached == cluster, axis=1)
            if not np.any(mask):
                continue
            dist = shapes[cluster].normalized_distance(
                data[rows[mask]], self.normalization, counters
            )
            better = dist < best[mask]
            idx = np.flatnonzero(mask)[better]
            best[idx] = dist[better]
            best_label[idx] = cluster

        # Points about to change membership get their cache line refreshed
        # from a full distance row (and the full row decides their label, so
        # a stale candidate list cannot mis-assign them).
        moved = np.flatnonzero(best_label != labels[rows])
        if moved.size:
            full = self._distance_matrix(data[rows[moved]], shapes, counters)
            table.refresh(rows[moved], full)
            best_label[moved] = np.argmin(full, axis=1)
        return best_label.astype(np.int64)

    def _distance_matrix(
        self,
        points: np.ndarray,
        shapes: List[ClusterShape],
        counters: Optional[CostCounters],
    ) -> np.ndarray:
        # The hottest k-means loop, routed through the fused batch kernel:
        # one (n, k) matrix per sweep with no per-shape (n, d) whitening
        # temporaries on the compiled backend, and column-for-column
        # bit-identity with the per-shape normalized_distance loop on the
        # reference backend.  Counter charges are unchanged.
        return batch_normalized_mahalanobis(
            points, shapes, self.normalization, counters
        )

    # ------------------------------------------------------------------
    # centroid / covariance maintenance
    # ------------------------------------------------------------------

    @staticmethod
    def _recentre(
        data: np.ndarray, labels: np.ndarray, shapes: List[ClusterShape]
    ):
        """Move centroids to member means (covariances fixed); drop empties."""
        kept: List[ClusterShape] = []
        remap = np.full(len(shapes), -1, dtype=np.int64)
        for cluster, shape in enumerate(shapes):
            mask = labels == cluster
            if not np.any(mask):
                continue
            remap[cluster] = len(kept)
            kept.append(
                ClusterShape(
                    centroid=data[mask].mean(axis=0),
                    covariance=shape.covariance,
                )
            )
        dropped = len(kept) < len(shapes)
        new_labels = labels.copy()
        assigned = labels >= 0
        new_labels[assigned] = remap[labels[assigned]]
        return new_labels, kept, dropped

    @staticmethod
    def _refit_covariances(
        data: np.ndarray, labels: np.ndarray, shapes: List[ClusterShape]
    ) -> Optional[List[ClusterShape]]:
        """Outer-loop step: refit each cluster's covariance from members."""
        refitted: List[ClusterShape] = []
        any_refit = False
        for cluster, shape in enumerate(shapes):
            member_rows = np.flatnonzero(labels == cluster)
            if member_rows.size >= 2:
                refitted.append(ClusterShape.from_points(data[member_rows]))
                any_refit = True
            else:
                refitted.append(shape)
        return refitted if any_refit else None
