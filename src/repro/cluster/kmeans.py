"""Euclidean (Lloyd) k-means with k-means++ seeding.

Two roles in the reproduction:

* the LDR baseline (Chakrabarti & Mehrotra, VLDB 2000) clusters with plain
  Euclidean distance — the very behaviour Figure 1 criticizes, since it can
  only discover spherical neighbourhoods;
* elliptical k-means seeds its centroids from one cheap Euclidean pass.

Implemented directly on numpy; no external clustering library is used
anywhere in the repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..storage.metrics import CostCounters

__all__ = ["KMeansResult", "kmeans", "kmeans_pp_seeds", "euclidean_sq"]


def euclidean_sq(
    points: np.ndarray,
    centroids: np.ndarray,
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Pairwise squared Euclidean distances, ``(n_points, n_centroids)``."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    centroids = np.atleast_2d(np.asarray(centroids, dtype=np.float64))
    if counters is not None:
        counters.count_distance(
            points.shape[0] * centroids.shape[0], dims=points.shape[1]
        )
    p_sq = np.einsum("ij,ij->i", points, points)[:, None]
    c_sq = np.einsum("ij,ij->i", centroids, centroids)[None, :]
    cross = points @ centroids.T
    dist = p_sq + c_sq - 2.0 * cross
    np.clip(dist, 0.0, None, out=dist)
    return dist


def kmeans_pp_seeds(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to squared
    distance from the already-chosen set."""
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if n == 0:
        raise ValueError("cannot seed centroids from an empty dataset")
    n_clusters = min(n_clusters, n)
    chosen = [int(rng.integers(n))]
    closest_sq = euclidean_sq(data, data[chosen])[:, 0]
    while len(chosen) < n_clusters:
        total = float(closest_sq.sum())
        if total <= 0.0:
            # All remaining points coincide with a centroid; fill arbitrarily.
            remaining = [i for i in range(n) if i not in set(chosen)]
            chosen.extend(remaining[: n_clusters - len(chosen)])
            break
        probs = closest_sq / total
        pick = int(rng.choice(n, p=probs))
        chosen.append(pick)
        pick_sq = euclidean_sq(data, data[[pick]])[:, 0]
        np.minimum(closest_sq, pick_sq, out=closest_sq)
    return data[np.asarray(chosen, dtype=np.int64)].copy()


@dataclass
class KMeansResult:
    """Outcome of a Lloyd run.

    ``labels[i]`` indexes ``centroids``; empty clusters have been dropped, so
    the number of rows in ``centroids`` can be smaller than requested.
    """

    labels: np.ndarray
    centroids: np.ndarray
    iterations: int
    converged: bool
    inertia: float

    @property
    def n_clusters(self) -> int:
        return self.centroids.shape[0]

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the points assigned to ``cluster``."""
        return np.flatnonzero(self.labels == cluster)


def kmeans(
    data: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
    max_iterations: int = 100,
    counters: Optional[CostCounters] = None,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding and empty-cluster dropping.

    Determinism: all randomness flows through ``rng``, so a seeded generator
    reproduces the run exactly.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    n = data.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty dataset")
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if max_iterations < 1:
        raise ValueError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )

    centroids = kmeans_pp_seeds(data, n_clusters, rng)
    labels = np.full(n, -1, dtype=np.int64)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = euclidean_sq(data, centroids, counters=counters)
        new_labels = np.argmin(distances, axis=1)
        if np.array_equal(new_labels, labels):
            converged = True
            break
        labels = new_labels
        centroids, labels = _update_centroids(data, labels, centroids)
    distances = euclidean_sq(data, centroids)
    inertia = float(distances[np.arange(n), labels].sum())
    return KMeansResult(
        labels=labels,
        centroids=centroids,
        iterations=iterations,
        converged=converged,
        inertia=inertia,
    )


def _update_centroids(
    data: np.ndarray, labels: np.ndarray, centroids: np.ndarray
) -> tuple:
    """Recompute means; drop empty clusters and compact the label space."""
    kept_means: List[np.ndarray] = []
    remap = np.full(centroids.shape[0], -1, dtype=np.int64)
    for cluster in range(centroids.shape[0]):
        mask = labels == cluster
        if not np.any(mask):
            continue
        remap[cluster] = len(kept_means)
        kept_means.append(data[mask].mean(axis=0))
    new_labels = remap[labels]
    return np.asarray(kept_means), new_labels
