"""Lookup table for elliptical k-means (paper §4.2).

The most expensive step of MMDR is the Mahalanobis distance computation
between every point and every centroid, each clustering iteration.  The
paper's first optimization caches, per point, the IDs of the ``k`` closest
centroids found in the previous iteration; later iterations compute
distances only against those candidates, and an entry is refreshed only when
the point's membership actually changes.  The second optimization adds an
*Activity* field counting consecutive iterations without a membership
change; once the count passes a threshold the point is *inactive* and skips
distance computation entirely until the number of clusters changes.

This module holds the table itself; the driving logic lives in
:mod:`repro.cluster.elliptical`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CentroidLookupTable"]


class CentroidLookupTable:
    """Per-point cache of candidate centroid IDs plus an activity counter.

    Parameters
    ----------
    n_points:
        Number of data points.
    k:
        Candidate list length (Table 1 default is 3).
    activity_threshold:
        Consecutive no-change iterations after which a point is *inactive*
        (the scalability experiment in §6.3 uses 10).
    """

    def __init__(
        self, n_points: int, k: int, activity_threshold: int
    ) -> None:
        if n_points < 0:
            raise ValueError(f"n_points must be >= 0, got {n_points}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if activity_threshold < 1:
            raise ValueError(
                f"activity_threshold must be >= 1, got {activity_threshold}"
            )
        self.n_points = n_points
        self.k = k
        self.activity_threshold = activity_threshold
        # -1 marks "no candidates cached yet".
        self.candidates = np.full((n_points, k), -1, dtype=np.int64)
        self.activity = np.zeros(n_points, dtype=np.int64)

    def refresh(self, rows: np.ndarray, distances: np.ndarray) -> None:
        """Recompute candidate lists for ``rows`` from full distance rows.

        ``distances`` is ``(len(rows), n_clusters)``; the ``k`` smallest
        entries per row (or all of them when fewer clusters exist) become the
        new candidate lists, closest first.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        n_clusters = distances.shape[1]
        keep = min(self.k, n_clusters)
        order = np.argsort(distances, axis=1)[:, :keep]
        self.candidates[rows, :keep] = order
        self.candidates[rows, keep:] = -1

    def candidates_for(self, rows: np.ndarray) -> np.ndarray:
        """Cached candidate IDs for ``rows`` (may contain -1 padding)."""
        return self.candidates[np.asarray(rows, dtype=np.int64)]

    def record_outcome(self, rows: np.ndarray, changed: np.ndarray) -> None:
        """Update activity counters after an assignment step.

        ``changed`` is a boolean array aligned with ``rows``: points whose
        membership changed reset to 0, others increment.
        """
        rows = np.asarray(rows, dtype=np.int64)
        changed = np.asarray(changed, dtype=bool)
        if rows.shape != changed.shape:
            raise ValueError(
                f"rows shape {rows.shape} != changed shape {changed.shape}"
            )
        self.activity[rows[changed]] = 0
        self.activity[rows[~changed]] += 1

    def active_mask(self) -> np.ndarray:
        """Boolean mask of points still doing distance computations."""
        return self.activity < self.activity_threshold

    def reactivate_all(self) -> None:
        """Wake every point (the paper does this when the number of clusters
        changes)."""
        self.activity[:] = 0

    def invalidate(self) -> None:
        """Drop all cached candidates (e.g. after covariances are refitted)
        without touching activity state."""
        self.candidates[:] = -1

    @property
    def inactive_fraction(self) -> float:
        """Share of points currently inactive (diagnostic for §4.2 claims)."""
        if self.n_points == 0:
            return 0.0
        return float(np.count_nonzero(~self.active_mask())) / self.n_points
