"""Clustering substrate: Euclidean k-means and elliptical k-means.

Euclidean k-means (``kmeans``) backs the LDR baseline; elliptical k-means
(:class:`EllipticalKMeans`) — the Sung–Poggio nested-loop algorithm under the
normalized Mahalanobis distance, with the paper's §4.2 lookup-table and
activity optimizations — is the engine inside MMDR's `Generate Ellipsoid`.
"""

from .elliptical import EllipticalKMeans, EllipticalKMeansResult
from .kmeans import KMeansResult, euclidean_sq, kmeans, kmeans_pp_seeds
from .lookup import CentroidLookupTable

__all__ = [
    "CentroidLookupTable",
    "EllipticalKMeans",
    "EllipticalKMeansResult",
    "KMeansResult",
    "euclidean_sq",
    "kmeans",
    "kmeans_pp_seeds",
]
