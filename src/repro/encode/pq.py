"""Seeded product-quantization codebooks over contiguous sub-blocks.

A :class:`PQEncoder` is trained on one partition's *frame vectors* (a
subspace's reduced projections, or the outlier set's full-``d`` points):
the frame's width is split into at most ``n_subquantizers`` contiguous
sub-blocks, each sub-block gets its own k-means codebook, and a vector's
code is the per-block nearest-centroid index — one uint8 per block.

Queries never decode: :meth:`PQEncoder.adc_table` precomputes the
squared distance from the query's sub-vectors to every centroid, and
:func:`adc_scan` sums table lookups per code row (asymmetric distance
computation).  Squared distances are compare-monotone with the exact
metric, which is all candidate selection needs — the exact rerank
downstream restores true distances.

Training is deterministic per ``(seed, partition)`` via
``np.random.default_rng([seed, partition_index])``; k-means may drop
empty clusters, so per-block codebooks can hold fewer rows than
``codebook_size`` and ADC tables are padded with ``inf`` (a code can
never point at a dropped row, so the padding is unreachable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from ..cluster.kmeans import euclidean_sq, kmeans
from ..storage.metrics import CostCounters

#: Codes are stored as uint8, so a codebook may hold at most 256 rows.
MAX_CODEBOOK = 256


@dataclass(frozen=True)
class EncoderConfig:
    """Tuning knobs for the approximate tier.

    ``n_subquantizers`` and ``codebook_size`` set code fidelity (memory
    and scan cost per vector); ``rerank_depth`` is the default scan
    depth — the candidate set handed to the exact rerank holds
    ``rerank_depth * k`` rids.  Together they are the recall knob
    exposed on ``VectorIndex.knn(..., mode="approx")``.
    """

    n_subquantizers: int = 4
    codebook_size: int = 16
    rerank_depth: int = 4
    train_iterations: int = 25

    def __post_init__(self) -> None:
        if self.n_subquantizers < 1:
            raise ValueError(
                f"n_subquantizers must be >= 1, got {self.n_subquantizers}"
            )
        if not 1 <= self.codebook_size <= MAX_CODEBOOK:
            raise ValueError(
                f"codebook_size must be in [1, {MAX_CODEBOOK}], "
                f"got {self.codebook_size}"
            )
        if self.rerank_depth < 1:
            raise ValueError(
                f"rerank_depth must be >= 1, got {self.rerank_depth}"
            )
        if self.train_iterations < 1:
            raise ValueError(
                f"train_iterations must be >= 1, got {self.train_iterations}"
            )


def split_blocks(width: int, n_subquantizers: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` sub-block bounds covering ``width`` dims.

    At most ``n_subquantizers`` blocks (never more blocks than dims);
    when the width does not divide evenly the leading blocks are one
    dim wider, so the layout is deterministic in ``width`` alone.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    blocks = min(n_subquantizers, width)
    base, extra = divmod(width, blocks)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(blocks):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


@runtime_checkable
class Encoder(Protocol):
    """What the approximate layer requires of a per-partition encoder."""

    @property
    def code_width(self) -> int:
        """Bytes per stored code row."""

    def fit(
        self,
        vectors: np.ndarray,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> "Encoder":
        """Learn the codebooks from ``(n, width)`` frame vectors."""

    def encode(
        self,
        vectors: np.ndarray,
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Map ``(n, width)`` vectors to ``(n, code_width)`` uint8 codes."""

    def adc_table(
        self,
        query: np.ndarray,
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Per-block squared query-to-centroid distances for ADC scans."""


class PQEncoder:
    """Product quantizer over one partition's frame vectors."""

    def __init__(self, config: EncoderConfig) -> None:
        self.config = config
        self.splits: List[Tuple[int, int]] = []
        self.centroids: List[np.ndarray] = []

    @property
    def code_width(self) -> int:
        return len(self.splits)

    def fit(
        self,
        vectors: np.ndarray,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> "PQEncoder":
        arr = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if arr.shape[0] == 0:
            raise ValueError("fit expects a non-empty (n, width) array")
        self.splits = split_blocks(arr.shape[1], self.config.n_subquantizers)
        self.centroids = []
        n_clusters = min(self.config.codebook_size, arr.shape[0])
        for lo, hi in self.splits:
            result = kmeans(
                np.ascontiguousarray(arr[:, lo:hi]),
                n_clusters,
                rng,
                max_iterations=self.config.train_iterations,
                counters=counters,
            )
            self.centroids.append(result.centroids)
        return self

    def encode(
        self,
        vectors: np.ndarray,
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        self._require_fitted()
        arr = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        codes = np.empty((arr.shape[0], self.code_width), dtype=np.uint8)
        for m, (lo, hi) in enumerate(self.splits):
            sq = euclidean_sq(
                np.ascontiguousarray(arr[:, lo:hi]),
                self.centroids[m],
                counters,
            )
            codes[:, m] = np.argmin(sq, axis=1)
        return codes

    def adc_table(
        self,
        query: np.ndarray,
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """``(code_width, ksub_max)`` squared sub-distances, inf-padded.

        Blocks whose codebook shrank (dropped empty clusters) occupy
        only their leading columns; the ``inf`` padding is unreachable
        because codes index real centroid rows.
        """
        self._require_fitted()
        q = np.asarray(query, dtype=np.float64)
        ksub_max = max(c.shape[0] for c in self.centroids)
        table = np.full((self.code_width, ksub_max), np.inf)
        for m, (lo, hi) in enumerate(self.splits):
            sq = euclidean_sq(
                np.ascontiguousarray(q[lo:hi][None, :]),
                self.centroids[m],
                counters,
            )
            table[m, : self.centroids[m].shape[0]] = sq[0]
        return table

    def _require_fitted(self) -> None:
        if not self.splits:
            raise RuntimeError("PQEncoder used before fit()")


def adc_scan(codes: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Squared ADC distance per code row: sum of per-block table lookups."""
    cols = codes.astype(np.intp, copy=False)
    rows = np.arange(table.shape[0], dtype=np.intp)[None, :]
    return table[rows, cols].sum(axis=1)
