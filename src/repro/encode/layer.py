"""Per-partition code store and the ADC-scan → exact-rerank search.

:func:`build_encoder` freezes one :class:`CodedPartition` per bulk
partition (each reduced subspace, plus the outlier set): a PQ encoder
trained on the partition's frame vectors, the uint8 codes, and the code
pages allocated on the owning index's page store so scans are charged
through the same logical I/O accounting as exact search.

:meth:`ApproxLayer.search` answers one query in two traced phases:

``knn.approx.scan``
    Project the query into every subspace frame, build each partition's
    ADC table, read the code pages, and ADC-scan all bulk codes.  Delta
    entries (online inserts) have no codes — they are scanned *exactly*
    here, mirroring the exact path's delta handling, and bypass rerank.

``knn.approx.rerank``
    Keep the ``rerank_depth * k`` best-scoring live bulk rids, read each
    candidate's data page (via the index's rerank-page map — the
    iDistance locate path, or the recorded build layout elsewhere), and
    score the frame vectors exactly.  The final top-k merges reranked
    bulk candidates with the exactly-scanned delta entries.

Recall is monotone in ``rerank_depth``: a true neighbor that survives
top-k selection in some candidate set survives it in every superset,
and once the candidate set covers all live bulk rids (delta is always
exact) the answer set equals exact search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from ..obs.tracer import Tracer, ensure_tracer
from ..storage.pager import PAGE_SIZE
from .pq import EncoderConfig, PQEncoder, adc_scan

EMPTY_IDS = np.empty(0, dtype=np.int64)
EMPTY_DISTS = np.empty(0, dtype=np.float64)


@dataclass
class CodedPartition:
    """Frozen codes for one bulk partition (subspace or outlier set)."""

    subspace_idx: int  # -1 for the outlier set
    encoder: PQEncoder
    codes: np.ndarray  # (m, code_width) uint8
    rids: np.ndarray  # (m,) int64
    pages: List[int]  # code pages on the owning index's store


class ApproxLayer:
    """Code store plus approximate search over one attached index.

    The layer holds references into the index's reduced representation
    (frame vectors are *not* duplicated) and pickles along with the
    index through the snapshot machinery, so a recovered index answers
    ``mode="approx"`` queries without retraining.
    """

    def __init__(self, config: EncoderConfig, seed: int) -> None:
        self.config = config
        self.seed = seed
        self.partitions: List[CodedPartition] = []
        self._all_rids = EMPTY_IDS
        self._all_parts = np.empty(0, dtype=np.int32)
        self._all_rows = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _finalize(self) -> None:
        """Concatenate per-partition rid/row maps for candidate picks."""
        if not self.partitions:
            return
        self._all_rids = np.concatenate([p.rids for p in self.partitions])
        self._all_parts = np.concatenate(
            [
                np.full(p.rids.size, i, dtype=np.int32)
                for i, p in enumerate(self.partitions)
            ]
        )
        self._all_rows = np.concatenate(
            [np.arange(p.rids.size, dtype=np.int64) for p in self.partitions]
        )

    @property
    def total_code_pages(self) -> int:
        return sum(len(p.pages) for p in self.partitions)

    @property
    def total_codes(self) -> int:
        return int(self._all_rids.size)

    def describe(self) -> dict:
        """Compact summary (snapshot manifests, demos, telemetry)."""
        return {
            "partitions": len(self.partitions),
            "codes": self.total_codes,
            "code_pages": self.total_code_pages,
            "n_subquantizers": self.config.n_subquantizers,
            "codebook_size": self.config.codebook_size,
            "rerank_depth": self.config.rerank_depth,
            "seed": self.seed,
        }

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(
        self,
        index: Any,
        query: np.ndarray,
        k: int,
        rerank_depth: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """ADC-scan codes, rerank the best candidates exactly."""
        tracer = ensure_tracer(tracer)
        depth = (
            int(rerank_depth)
            if rerank_depth is not None
            else self.config.rerank_depth
        )
        if depth < 1:
            raise ValueError(f"rerank_depth must be >= 1, got {depth}")
        k_eff = min(k, index.live_count)
        if k_eff <= 0:
            return EMPTY_IDS, EMPTY_DISTS
        counters = index.counters
        pool = index.pool
        reduced = index.reduced
        tombstones = index._tombstone_array()

        with tracer.span(
            "knn.approx.scan",
            counters=counters,
            partitions=len(self.partitions),
            depth=depth,
        ):
            q_frames = [
                subspace.project(query) for subspace in reduced.subspaces
            ]
            chunks: List[np.ndarray] = []
            for part in self.partitions:
                q_frame = (
                    q_frames[part.subspace_idx]
                    if part.subspace_idx >= 0
                    else query
                )
                table = part.encoder.adc_table(q_frame, counters=counters)
                for page in part.pages:
                    pool.read(page)
                chunks.append(adc_scan(part.codes, table))
                counters.count_distance(
                    part.codes.shape[0], dims=part.encoder.code_width
                )
            approx_sq = np.concatenate(chunks) if chunks else EMPTY_DISTS
            delta_dists, delta_rids = self._scan_delta(
                index, query, q_frames, tombstones
            )
            if tracer.enabled:
                tracer.counter("encode.codes_scanned").inc(
                    int(approx_sq.size)
                )

        live = (
            np.ones(self._all_rids.size, dtype=bool)
            if tombstones.size == 0
            else ~np.isin(self._all_rids, tombstones)
        )
        live_idx = np.flatnonzero(live)
        n_cand = min(depth * k_eff, live_idx.size)
        if n_cand > 0 and n_cand < live_idx.size:
            scores = approx_sq[live_idx]
            chosen = live_idx[np.argpartition(scores, n_cand - 1)[:n_cand]]
        else:
            chosen = live_idx

        with tracer.span(
            "knn.approx.rerank",
            counters=counters,
            candidates=int(chosen.size),
            delta_entries=int(delta_rids.size),
        ):
            cand_dists, cand_rids = self._rerank(
                index, query, q_frames, chosen
            )
            if delta_rids.size:
                cand_dists = np.concatenate([cand_dists, delta_dists])
                cand_rids = np.concatenate([cand_rids, delta_rids])
            order = np.lexsort((cand_rids, cand_dists))[:k_eff]
            ids = cand_rids[order]
            dists = cand_dists[order]
        if tracer.enabled:
            tracer.counter("encode.candidates_reranked").inc(int(chosen.size))
            tracer.histogram("knn.approx.result_k").observe(float(ids.size))
        return ids, dists

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    @staticmethod
    def _frame_vectors(index: Any, part: CodedPartition) -> np.ndarray:
        if part.subspace_idx >= 0:
            return index.reduced.subspaces[part.subspace_idx].projections
        return index.reduced.outliers.points

    def _rerank(
        self,
        index: Any,
        query: np.ndarray,
        q_frames: List[np.ndarray],
        chosen: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact distances for the chosen bulk candidates.

        Candidates are visited in (partition, row) order so the page
        reads below replay each partition's layout in ascending ranges
        (the LRU dedups within a page exactly as the exact path does).
        """
        if chosen.size == 0:
            return EMPTY_DISTS, EMPTY_IDS
        counters = index.counters
        pool = index.pool
        order = np.lexsort((self._all_rows[chosen], self._all_parts[chosen]))
        chosen = chosen[order]
        rids = self._all_rids[chosen]
        parts_arr = self._all_parts[chosen]
        rows_arr = self._all_rows[chosen]
        for page in index._approx_rerank_pages(rids).tolist():
            pool.read(page)
        dists = np.empty(chosen.size, dtype=np.float64)
        for pidx in np.unique(parts_arr).tolist():
            mask = parts_arr == pidx
            part = self.partitions[pidx]
            frame = self._frame_vectors(index, part)
            ref = (
                q_frames[part.subspace_idx]
                if part.subspace_idx >= 0
                else query
            )
            block = frame[rows_arr[mask]]
            dists[mask] = np.linalg.norm(block - ref, axis=1)
            counters.count_distance(
                int(np.count_nonzero(mask)), dims=max(1, block.shape[1])
            )
        return dists, rids

    def _scan_delta(
        self,
        index: Any,
        query: np.ndarray,
        q_frames: List[np.ndarray],
        tombstones: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact distances for online-inserted (delta) entries.

        Delta entries were routed after the codebooks froze, so they
        carry no codes; scoring them exactly here keeps the approximate
        path's treatment of recent writes identical to exact search
        (score every delta entry, drop tombstoned rids afterwards).
        """
        counters = index.counters
        pool = index.pool
        tomb = set(tombstones.tolist())
        dists: List[float] = []
        rids: List[int] = []
        partitions = getattr(index, "partitions", None)
        if partitions is not None:
            # ExtendedIDistance keeps per-partition delta blocks.
            for partition in partitions:
                if not partition.delta_rids:
                    continue
                for page in partition.delta_pages:
                    pool.read(page)
                ref = partition.project_query(query)
                block = np.vstack(partition.delta_vectors)
                scored = np.linalg.norm(block - ref, axis=1)
                counters.count_distance(
                    block.shape[0], dims=max(1, block.shape[1])
                )
                for dist, rid in zip(scored.tolist(), partition.delta_rids):
                    if rid not in tomb:
                        dists.append(dist)
                        rids.append(rid)
        else:
            delta = getattr(index, "delta", None)
            if delta is not None and delta.rids:
                for page in delta.pages:
                    pool.read(page)
                for vector, rid, sidx in delta.entries():
                    ref = q_frames[sidx] if sidx >= 0 else query
                    dist = float(np.linalg.norm(vector - ref))
                    counters.count_distance(1, dims=max(1, vector.size))
                    if rid not in tomb:
                        dists.append(dist)
                        rids.append(rid)
        return (
            np.asarray(dists, dtype=np.float64),
            np.asarray(rids, dtype=np.int64),
        )


def _allocate_code_pages(
    store: Any, pidx: int, codes: np.ndarray
) -> List[int]:
    """Row-pack one partition's codes onto store pages (1 byte/code)."""
    per_page = max(1, PAGE_SIZE // max(1, codes.shape[1]))
    pages: List[int] = []
    for page_no, lo in enumerate(range(0, codes.shape[0], per_page)):
        hi = min(lo + per_page, codes.shape[0])
        pages.append(
            store.allocate(
                ("pq-codes", pidx, page_no), (hi - lo) * codes.shape[1]
            )
        )
    return pages


def build_encoder(
    index: Any,
    config: Optional[EncoderConfig] = None,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> ApproxLayer:
    """Train and attach-ready an :class:`ApproxLayer` for ``index``.

    One PQ encoder per bulk partition, seeded per
    ``default_rng([seed, partition_index])`` so builds are reproducible
    regardless of partition count or training order.  Training charges
    no query counters; code pages are allocated on the index's store so
    ``size_pages`` and scan-time reads stay honest.
    """
    config = config if config is not None else EncoderConfig()
    tracer = ensure_tracer(tracer)
    layer = ApproxLayer(config, int(seed))
    reduced = index.reduced
    groups: List[Tuple[int, np.ndarray, np.ndarray]] = [
        (sidx, subspace.projections, subspace.member_ids)
        for sidx, subspace in enumerate(reduced.subspaces)
    ]
    outliers = reduced.outliers
    if outliers.size:
        groups.append((-1, outliers.points, outliers.member_ids))
    with tracer.span(
        "encode.build", counters=index.counters, partitions=len(groups)
    ):
        for pidx, (sidx, vectors, rids) in enumerate(groups):
            if vectors.shape[0] == 0:
                continue
            rng = np.random.default_rng([int(seed), pidx])
            encoder = PQEncoder(config).fit(vectors, rng)
            codes = encoder.encode(vectors)
            layer.partitions.append(
                CodedPartition(
                    subspace_idx=sidx,
                    encoder=encoder,
                    codes=codes,
                    rids=np.asarray(rids, dtype=np.int64),
                    pages=_allocate_code_pages(index.store, pidx, codes),
                )
            )
    layer._finalize()
    if tracer.enabled:
        tracer.gauge("encode.partitions").set(len(layer.partitions))
        tracer.gauge("encode.code_pages").set(layer.total_code_pages)
        tracer.gauge("encode.codes").set(layer.total_codes)
    return layer
