"""Approximate speed tier: per-subspace PQ codes with exact rerank.

The MMDR ellipsoids are exactly the locally correlated regions where
product-quantization codebooks are tight, so the encoder learns one
seeded PQ codebook *per reduced subspace* (plus one over the full-``d``
outlier set), stores compact uint8 codes on the owning index's page
store, and answers ``mode="approx"`` queries by ADC-scanning the codes
for a candidate set of ``rerank_depth * k`` rids which are then reranked
*exactly* through the index's own frame vectors and page accounting.

Exact-mode queries never touch this layer: attaching an encoder cannot
move a gated counter or fingerprint.
"""

from .layer import ApproxLayer, CodedPartition, build_encoder
from .pq import MAX_CODEBOOK, Encoder, EncoderConfig, PQEncoder, adc_scan

__all__ = [
    "ApproxLayer",
    "CodedPartition",
    "Encoder",
    "EncoderConfig",
    "MAX_CODEBOOK",
    "PQEncoder",
    "adc_scan",
    "build_encoder",
]
