"""B+-tree node payloads.

Nodes live as payloads on :class:`~repro.storage.pager.PageStore` pages.
Capacities derive from the simulated page size: a leaf entry is an 8-byte
key plus an 8-byte record id, an internal entry an 8-byte separator plus an
8-byte child pointer, so both node kinds hold 256 entries per 4 KiB page —
the fanout that makes the extended iDistance tree shallow and cheap, in
contrast to the Hybrid tree whose nodes store d-dimensional geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..storage.pager import KEY_SIZE, PAGE_SIZE, POINTER_SIZE, RID_SIZE

__all__ = [
    "LEAF_CAPACITY",
    "INTERNAL_CAPACITY",
    "LeafNode",
    "InternalNode",
]

#: Max (key, rid) entries in a leaf page.
LEAF_CAPACITY = PAGE_SIZE // (KEY_SIZE + RID_SIZE)
#: Max child pointers in an internal page.
INTERNAL_CAPACITY = PAGE_SIZE // (KEY_SIZE + POINTER_SIZE)


@dataclass
class LeafNode:
    """Sorted (key, rid) entries plus sibling links for range scans."""

    keys: List[float] = field(default_factory=list)
    rids: List[int] = field(default_factory=list)
    prev_page: Optional[int] = None
    next_page: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.rids):
            raise ValueError(
                f"{len(self.keys)} keys but {len(self.rids)} rids"
            )

    @property
    def is_leaf(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def size_bytes(self) -> int:
        return len(self.keys) * (KEY_SIZE + RID_SIZE)


@dataclass
class InternalNode:
    """Routing node: ``children[i]`` covers keys < ``separators[i]``,
    ``children[-1]`` covers the rest (len(children) == len(separators)+1)."""

    separators: List[float] = field(default_factory=list)
    children: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.children and len(self.children) != len(self.separators) + 1:
            raise ValueError(
                f"{len(self.children)} children requires "
                f"{len(self.children) - 1} separators, "
                f"got {len(self.separators)}"
            )

    @property
    def is_leaf(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self.children)

    @property
    def size_bytes(self) -> int:
        return (
            len(self.separators) * KEY_SIZE
            + len(self.children) * POINTER_SIZE
        )
