"""Paged B+-tree — the single structure under the extended iDistance.

Built from scratch on the simulated storage layer: one node per 4 KiB page,
reads through the LRU buffer pool, bulk load + dynamic insert + range scans
+ the bidirectional cursors iDistance's expanding-radius search needs.
"""

from .node import INTERNAL_CAPACITY, LEAF_CAPACITY, InternalNode, LeafNode
from .tree import BPlusTree, BTreeCursor

__all__ = [
    "BPlusTree",
    "BTreeCursor",
    "INTERNAL_CAPACITY",
    "InternalNode",
    "LEAF_CAPACITY",
    "LeafNode",
]
