"""Paged B+-tree with bulk loading, inserts, range scans and bidirectional
cursors.

This is the single index structure under the extended iDistance (§5): all
subspace projections map to one-dimensional keys and live together in one
tree.  Every node occupies one simulated page; all reads flow through the
:class:`~repro.storage.buffer.BufferPool`, so traversals charge exactly the
I/O the paper's Figure 9 measures, and key comparisons are counted for the
CPU-cost cross-checks of Figure 10.

The KNN search of iDistance needs more than plain range scans: it starts at
a key and expands outward in both directions as the query radius grows.
:class:`BTreeCursor` supports that access pattern — it is positioned between
entries and steps left or right one entry at a time, fetching sibling leaf
pages (with accounting) only when it crosses a page boundary.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Sequence, Tuple

from ..storage.buffer import BufferPool
from ..storage.metrics import CostCounters
from ..storage.pager import PageStore
from .node import INTERNAL_CAPACITY, LEAF_CAPACITY, InternalNode, LeafNode

__all__ = ["BPlusTree", "BTreeCursor", "BTreeInvariantError"]


class BTreeInvariantError(AssertionError):
    """A structural invariant of the tree does not hold.

    Raised by :meth:`BPlusTree.check_invariants`; the message names the
    page and the violated property.  Subclasses ``AssertionError`` because
    a violation is always a logic bug (or unrecovered corruption), never a
    condition callers should handle.
    """


class BPlusTree:
    """A disk-simulated B+-tree mapping float64 keys to int64 record ids.

    Duplicate keys are allowed (iDistance keys are distances, which tie).
    """

    def __init__(
        self,
        store: PageStore,
        pool: BufferPool,
        leaf_capacity: int = LEAF_CAPACITY,
        internal_capacity: int = INTERNAL_CAPACITY,
    ) -> None:
        if leaf_capacity < 2 or internal_capacity < 3:
            raise ValueError(
                "capacities too small for a functioning tree "
                f"(leaf={leaf_capacity}, internal={internal_capacity})"
            )
        self.store = store
        self.pool = pool
        self.leaf_capacity = leaf_capacity
        self.internal_capacity = internal_capacity
        self.counters: CostCounters = pool.counters
        self.root_page: Optional[int] = None
        self.height = 0
        self.n_entries = 0
        self._first_leaf: Optional[int] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def bulk_load(
        self, keys: Sequence[float], rids: Sequence[int]
    ) -> None:
        """Build the tree bottom-up from key-sorted data (classic bulk load:
        fill leaves left to right, then stack internal levels)."""
        if self.root_page is not None:
            raise RuntimeError("tree is already loaded")
        if len(keys) != len(rids):
            raise ValueError(f"{len(keys)} keys but {len(rids)} rids")
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("bulk_load requires keys in ascending order")
        if not keys:
            # Empty tree: a single empty leaf as root.
            leaf = LeafNode()
            self.root_page = self.store.allocate(leaf, leaf.size_bytes)
            self._first_leaf = self.root_page
            self.height = 1
            return

        # Fill leaves at ~90% so early inserts do not split immediately.
        fill = max(2, int(self.leaf_capacity * 0.9))
        leaf_pages: List[int] = []
        leaf_high_keys: List[float] = []
        prev_page: Optional[int] = None
        for lo in range(0, len(keys), fill):
            hi = min(lo + fill, len(keys))
            leaf = LeafNode(
                keys=[float(k) for k in keys[lo:hi]],
                rids=[int(r) for r in rids[lo:hi]],
                prev_page=prev_page,
            )
            page_id = self.store.allocate(leaf, leaf.size_bytes)
            if prev_page is not None:
                prev_leaf = self.store.fetch(prev_page).payload
                prev_leaf.next_page = page_id
                self.store.overwrite(
                    prev_page, prev_leaf, prev_leaf.size_bytes
                )
            leaf_pages.append(page_id)
            leaf_high_keys.append(float(keys[hi - 1]))
            prev_page = page_id
        self._first_leaf = leaf_pages[0]
        self.n_entries = len(keys)

        level_pages = leaf_pages
        level_high = leaf_high_keys
        self.height = 1
        ifill = max(3, int(self.internal_capacity * 0.9))
        while len(level_pages) > 1:
            next_pages: List[int] = []
            next_high: List[float] = []
            for lo in range(0, len(level_pages), ifill):
                hi = min(lo + ifill, len(level_pages))
                children = level_pages[lo:hi]
                separators = level_high[lo:hi - 1]
                node = InternalNode(
                    separators=list(separators), children=list(children)
                )
                next_pages.append(
                    self.store.allocate(node, node.size_bytes)
                )
                next_high.append(level_high[hi - 1])
            level_pages = next_pages
            level_high = next_high
            self.height += 1
        self.root_page = level_pages[0]

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def _descend(self, key: float) -> int:
        """Page id of the leaf that should contain ``key``; a separator
        equal to ``key`` routes right so the leaf holding the first entry
        ``>= key`` is found."""
        if self.root_page is None:
            raise RuntimeError("tree is empty; bulk_load or insert first")
        page_id = self.root_page
        node = self.pool.read(page_id)
        while not node.is_leaf:
            idx = bisect.bisect_left(node.separators, key)
            self.counters.count_key_comparison(
                max(1, len(node.separators).bit_length())
            )
            page_id = node.children[idx]
            node = self.pool.read(page_id)
        return page_id

    def descend_path(self, key: float) -> Tuple[List[int], int]:
        """The pages :meth:`_descend` would read (root → leaf, in order) and
        the key comparisons it would charge, computed *without* touching the
        buffer pool or counters.

        The batch KNN engine replays tree descents through per-query cost
        ledgers instead of the shared pool; this keeps the replayed I/O and
        CPU accounting exactly equal to a live descent.  Replay models no
        real I/O, so it uses ``raw_fetch`` and never observes injected
        faults (the live descent it mirrors already paid — and retried —
        them through the buffer pool).
        """
        if self.root_page is None:
            raise RuntimeError("tree is empty; bulk_load or insert first")
        page_id = self.root_page
        pages = [page_id]
        comparisons = 0
        node = self.store.raw_fetch(page_id).payload
        while not node.is_leaf:
            idx = bisect.bisect_left(node.separators, key)
            comparisons += max(1, len(node.separators).bit_length())
            page_id = node.children[idx]
            pages.append(page_id)
            node = self.store.raw_fetch(page_id).payload
        return pages, comparisons

    def search(self, key: float) -> List[int]:
        """All rids stored under exactly ``key`` (duplicates included)."""
        rids: List[int] = []
        for k, rid in self.range(key, key):
            del k
            rids.append(rid)
        return rids

    def range(
        self, lo: float, hi: float
    ) -> Iterator[Tuple[float, int]]:
        """Yield ``(key, rid)`` for all entries with ``lo <= key <= hi``."""
        if self.root_page is None:
            return
        if hi < lo:
            return
        page_id: Optional[int] = self._descend(lo)
        while page_id is not None:
            leaf: LeafNode = self.pool.read(page_id)
            start = bisect.bisect_left(leaf.keys, lo)
            self.counters.count_key_comparison(
                max(1, len(leaf.keys).bit_length())
            )
            for idx in range(start, len(leaf.keys)):
                if leaf.keys[idx] > hi:
                    return
                self.counters.count_key_comparison()
                yield leaf.keys[idx], leaf.rids[idx]
            page_id = leaf.next_page

    def cursor(self, key: float) -> "BTreeCursor":
        """A bidirectional cursor positioned at the first entry >= key."""
        if self.root_page is None:
            raise RuntimeError("tree is empty; bulk_load or insert first")
        page_id = self._descend(key)
        leaf: LeafNode = self.pool.read(page_id)
        idx = bisect.bisect_left(leaf.keys, key)
        self.counters.count_key_comparison(
            max(1, len(leaf.keys).bit_length())
        )
        return BTreeCursor(self, page_id, idx)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, key: float, rid: int) -> None:
        """Insert one entry, splitting nodes on overflow (root included)."""
        key = float(key)
        rid = int(rid)
        if self.root_page is None:
            leaf = LeafNode(keys=[key], rids=[rid])
            self.root_page = self.store.allocate(leaf, leaf.size_bytes)
            self._first_leaf = self.root_page
            self.height = 1
            self.n_entries = 1
            return

        path: List[Tuple[int, int]] = []  # (page_id, child_idx) per level
        page_id = self.root_page
        node = self.pool.read(page_id)
        while not node.is_leaf:
            idx = bisect.bisect_left(node.separators, key)
            path.append((page_id, idx))
            page_id = node.children[idx]
            node = self.pool.read(page_id)

        leaf: LeafNode = node
        pos = bisect.bisect_right(leaf.keys, key)
        leaf.keys.insert(pos, key)
        leaf.rids.insert(pos, rid)
        self.n_entries += 1
        if len(leaf.keys) <= self.leaf_capacity:
            self.store.overwrite(page_id, leaf, leaf.size_bytes)
            self.pool.invalidate(page_id)
            return

        # Leaf split: right half moves to a new page.
        mid = len(leaf.keys) // 2
        right = LeafNode(
            keys=leaf.keys[mid:],
            rids=leaf.rids[mid:],
            prev_page=page_id,
            next_page=leaf.next_page,
        )
        right_page = self.store.allocate(right, right.size_bytes)
        if leaf.next_page is not None:
            nxt = self.store.fetch(leaf.next_page).payload
            nxt.prev_page = right_page
            self.store.overwrite(leaf.next_page, nxt, nxt.size_bytes)
            self.pool.invalidate(leaf.next_page)
        leaf.keys = leaf.keys[:mid]
        leaf.rids = leaf.rids[:mid]
        leaf.next_page = right_page
        self.store.overwrite(page_id, leaf, leaf.size_bytes)
        self.pool.invalidate(page_id)
        self._insert_into_parent(
            path, page_id, leaf.keys[-1], right_page
        )

    def _insert_into_parent(
        self,
        path: List[Tuple[int, int]],
        left_page: int,
        separator: float,
        right_page: int,
    ) -> None:
        if not path:
            root = InternalNode(
                separators=[separator], children=[left_page, right_page]
            )
            self.root_page = self.store.allocate(root, root.size_bytes)
            self.height += 1
            return
        parent_page, child_idx = path.pop()
        parent: InternalNode = self.store.fetch(parent_page).payload
        parent.separators.insert(child_idx, separator)
        parent.children.insert(child_idx + 1, right_page)
        if len(parent.children) <= self.internal_capacity:
            self.store.overwrite(parent_page, parent, parent.size_bytes)
            self.pool.invalidate(parent_page)
            return
        mid = len(parent.separators) // 2
        promote = parent.separators[mid]
        right = InternalNode(
            separators=parent.separators[mid + 1:],
            children=parent.children[mid + 1:],
        )
        right_id = self.store.allocate(right, right.size_bytes)
        parent.separators = parent.separators[:mid]
        parent.children = parent.children[: mid + 1]
        self.store.overwrite(parent_page, parent, parent.size_bytes)
        self.pool.invalidate(parent_page)
        self._insert_into_parent(path, parent_page, promote, right_id)

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------

    def delete(self, key: float, rid: int) -> None:
        """Remove the entry ``(key, rid)``; raises ``KeyError`` if absent.

        Duplicate keys are resolved by rid, scanning rightward across leaf
        boundaries when a duplicate run spills over.  Leaves are allowed to
        underflow (even to empty — cursors and range scans skip them), and
        no rebalancing or merging happens: online deletes in the simulated
        index are tombstone-cheap, and :meth:`check_invariants` documents
        exactly which occupancy bounds therefore still hold.
        """
        key = float(key)
        rid = int(rid)
        if self.root_page is None:
            raise KeyError(f"entry ({key!r}, {rid}) not in an empty tree")
        page_id: Optional[int] = self._descend(key)
        while page_id is not None:
            leaf: LeafNode = self.pool.read(page_id)
            idx = bisect.bisect_left(leaf.keys, key)
            self.counters.count_key_comparison(
                max(1, len(leaf.keys).bit_length())
            )
            while idx < len(leaf.keys) and leaf.keys[idx] == key:
                self.counters.count_key_comparison()
                if leaf.rids[idx] == rid:
                    del leaf.keys[idx]
                    del leaf.rids[idx]
                    self.store.overwrite(page_id, leaf, leaf.size_bytes)
                    self.pool.invalidate(page_id)
                    self.n_entries -= 1
                    return
                idx += 1
            if idx < len(leaf.keys):
                # First key past the duplicates exceeds `key`: not present.
                break
            # The duplicate run (or an empty leaf) may continue rightward.
            page_id = leaf.next_page
        raise KeyError(f"entry ({key!r}, {rid}) not in tree")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def check_invariants(self) -> dict:
        """Validate the tree's structure; raise :class:`BTreeInvariantError`
        on the first violation, else return a summary dict.

        Checked properties:

        * every internal node has ``len(children) == len(separators) + 1``,
          non-decreasing separators, and at most ``internal_capacity``
          children (at least 2 for the root when the tree has >1 level);
        * every node's occupancy respects the page-derived capacity upper
          bound (lower bounds are *not* enforced for leaves: bulk load
          fills to ~90% and :meth:`delete` never rebalances, so leaves may
          legally underflow to empty);
        * every subtree's keys lie within the separator interval routing
          to it (non-strict on both sides — duplicates may touch either
          separator);
        * leaf keys are sorted, with ``len(keys) == len(rids)``;
        * the leaf sibling chain from the first leaf visits exactly the
          DFS leaf sequence, with consistent prev/next links and globally
          non-decreasing keys across the chain;
        * ``n_entries`` equals the total number of leaf entries and
          ``height`` the root-to-leaf depth.

        Traversal uses ``raw_fetch`` so validation charges no I/O and
        observes no injected faults.
        """
        if self.root_page is None:
            if self.n_entries != 0:
                raise BTreeInvariantError(
                    f"empty tree claims {self.n_entries} entries"
                )
            return {"leaves": 0, "internal": 0, "entries": 0, "depth": 0}

        dfs_leaves: List[int] = []
        internal_nodes = 0
        depth_seen = set()

        def walk(
            page_id: int, lo: Optional[float], hi: Optional[float], depth: int
        ) -> None:
            nonlocal internal_nodes
            node = self.store.raw_fetch(page_id).payload
            if node.is_leaf:
                depth_seen.add(depth)
                if len(node.keys) != len(node.rids):
                    raise BTreeInvariantError(
                        f"leaf {page_id}: {len(node.keys)} keys vs "
                        f"{len(node.rids)} rids"
                    )
                if len(node.keys) > self.leaf_capacity:
                    raise BTreeInvariantError(
                        f"leaf {page_id} holds {len(node.keys)} entries; "
                        f"capacity is {self.leaf_capacity}"
                    )
                for i in range(len(node.keys) - 1):
                    if node.keys[i] > node.keys[i + 1]:
                        raise BTreeInvariantError(
                            f"leaf {page_id} keys out of order at {i}"
                        )
                if node.keys:
                    if lo is not None and node.keys[0] < lo:
                        raise BTreeInvariantError(
                            f"leaf {page_id} key {node.keys[0]!r} below "
                            f"its routing interval (>= {lo!r})"
                        )
                    if hi is not None and node.keys[-1] > hi:
                        raise BTreeInvariantError(
                            f"leaf {page_id} key {node.keys[-1]!r} above "
                            f"its routing interval (<= {hi!r})"
                        )
                dfs_leaves.append(page_id)
                return
            internal_nodes += 1
            if len(node.children) != len(node.separators) + 1:
                raise BTreeInvariantError(
                    f"internal {page_id}: {len(node.children)} children "
                    f"vs {len(node.separators)} separators"
                )
            if len(node.children) > self.internal_capacity:
                raise BTreeInvariantError(
                    f"internal {page_id} holds {len(node.children)} "
                    f"children; capacity is {self.internal_capacity}"
                )
            # Lower bound is 1, not ceil(capacity/2): the bulk loader may
            # leave a single-child node at a level's tail, and deletes
            # never rebalance — both are valid states for this tree.
            if len(node.children) < 1:
                raise BTreeInvariantError(
                    f"internal {page_id} has no children"
                )
            for i in range(len(node.separators) - 1):
                if node.separators[i] > node.separators[i + 1]:
                    raise BTreeInvariantError(
                        f"internal {page_id} separators out of order "
                        f"at {i}"
                    )
            for i, child in enumerate(node.children):
                child_lo = (
                    lo if i == 0 else node.separators[i - 1]
                )
                child_hi = (
                    hi
                    if i == len(node.separators)
                    else node.separators[i]
                )
                walk(child, child_lo, child_hi, depth + 1)

        walk(self.root_page, None, None, 1)

        if len(depth_seen) != 1:
            raise BTreeInvariantError(
                f"leaves at differing depths: {sorted(depth_seen)}"
            )
        depth = depth_seen.pop()
        if depth != self.height:
            raise BTreeInvariantError(
                f"height says {self.height}, leaves sit at depth {depth}"
            )

        # Leaf sibling chain: same pages, same order, consistent links,
        # globally sorted keys, and an entry count matching n_entries.
        chain: List[int] = []
        entries = 0
        prev_id: Optional[int] = None
        prev_last_key: Optional[float] = None
        page_id = self._first_leaf
        while page_id is not None:
            if len(chain) > len(dfs_leaves):
                raise BTreeInvariantError(
                    "leaf chain is longer than the tree's leaf set "
                    "(cycle or stray link)"
                )
            leaf = self.store.raw_fetch(page_id).payload
            if leaf.prev_page != prev_id:
                raise BTreeInvariantError(
                    f"leaf {page_id} prev_page is {leaf.prev_page}, "
                    f"expected {prev_id}"
                )
            if leaf.keys:
                if (
                    prev_last_key is not None
                    and leaf.keys[0] < prev_last_key
                ):
                    raise BTreeInvariantError(
                        f"leaf chain keys regress entering {page_id}"
                    )
                prev_last_key = leaf.keys[-1]
            entries += len(leaf.keys)
            chain.append(page_id)
            prev_id = page_id
            page_id = leaf.next_page
        if chain != dfs_leaves:
            raise BTreeInvariantError(
                "leaf chain and tree DFS disagree on the leaf sequence"
            )
        if entries != self.n_entries:
            raise BTreeInvariantError(
                f"n_entries says {self.n_entries}, leaves hold {entries}"
            )
        return {
            "leaves": len(chain),
            "internal": internal_nodes,
            "entries": entries,
            "depth": depth,
        }

    def __len__(self) -> int:
        return self.n_entries

    def items(self) -> Iterator[Tuple[float, int]]:
        """All entries in key order (sequential leaf walk, with I/O)."""
        page_id = self._first_leaf
        while page_id is not None:
            leaf: LeafNode = self.pool.read(page_id)
            yield from zip(leaf.keys, leaf.rids)
            page_id = leaf.next_page

    def leaf_page_ids(self) -> List[int]:
        """Leaf pages left to right (no I/O accounting; test helper)."""
        pages = []
        page_id = self._first_leaf
        while page_id is not None:
            pages.append(page_id)
            page_id = self.store.raw_fetch(page_id).payload.next_page
        return pages


class BTreeCursor:
    """Bidirectional entry cursor for iDistance's outward leaf expansion.

    The cursor sits *between* entries: ``peek_next`` returns the entry at
    the current position (first entry >= the seek key right after
    :meth:`BPlusTree.cursor`), ``peek_prev`` the one before it.  ``next`` /
    ``prev`` return the same entries and advance.  Crossing a page boundary
    reads the sibling leaf through the buffer pool.
    """

    def __init__(self, tree: BPlusTree, page_id: int, index: int) -> None:
        self.tree = tree
        self.page_id: Optional[int] = page_id
        self.index = index  # position within the current leaf

    def _leaf(self, page_id: int) -> LeafNode:
        return self.tree.pool.read(page_id)

    def peek_next(self) -> Optional[Tuple[float, int]]:
        entry = self._entry_at(self.page_id, self.index)
        return entry[0] if entry else None

    def next(self) -> Optional[Tuple[float, int]]:
        entry = self._entry_at(self.page_id, self.index)
        if entry is None:
            return None
        (key_rid, page_id, index) = entry
        self.page_id, self.index = page_id, index + 1
        return key_rid

    def _entry_at(self, page_id: Optional[int], index: int):
        """Resolve (entry, page, idx) skipping empty leaves rightward."""
        while page_id is not None:
            leaf = self._leaf(page_id)
            if index < len(leaf.keys):
                return (leaf.keys[index], leaf.rids[index]), page_id, index
            page_id = leaf.next_page
            index = 0
        return None

    def peek_prev(self) -> Optional[Tuple[float, int]]:
        entry = self._entry_before(self.page_id, self.index)
        return entry[0] if entry else None

    def prev(self) -> Optional[Tuple[float, int]]:
        entry = self._entry_before(self.page_id, self.index)
        if entry is None:
            return None
        (key_rid, page_id, index) = entry
        self.page_id, self.index = page_id, index
        return key_rid

    def _entry_before(self, page_id: Optional[int], index: int):
        if page_id is None:
            return None
        while True:
            if index > 0:
                leaf = self._leaf(page_id)
                return (
                    (leaf.keys[index - 1], leaf.rids[index - 1]),
                    page_id,
                    index - 1,
                )
            leaf = self._leaf(page_id)
            if leaf.prev_page is None:
                return None
            page_id = leaf.prev_page
            index = len(self._leaf(page_id).keys)
