"""Simulated Corel color-histogram dataset.

The paper's real-life dataset is "64-dimensional color histogram extracted
from 70,000 color images from Corel Database" (the same data LDR used).  The
Corel images themselves are proprietary, so we synthesize histograms with
the statistical properties §6.1 uses to explain the real data's behaviour:

* per image, mass is **skewed toward a small set of colors** — a handful of
  dominant bins carry almost everything;
* **many attributes are exactly 0**;
* images group into loose *themes* (beach, forest, sunset, ...) that share
  dominant bins, giving weak local correlation;
* a sizeable share of images fit no theme well — the "too many outliers" the
  paper blames for the lower precision on the real dataset.

Each theme is a Dirichlet distribution concentrated on its dominant bins;
an image samples its histogram from its theme's Dirichlet, and tiny bin
values are truncated to exact zeros (re-normalizing so each histogram still
sums to 1, as a color histogram does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ColorHistogramSpec", "generate_color_histograms"]


@dataclass(frozen=True)
class ColorHistogramSpec:
    """Shape of the simulated image collection.

    Defaults mirror the paper's dataset: 70 000 images, 64 bins.  The
    remaining knobs control how Corel-like the statistics are:
    ``dominant_bins`` per theme, Dirichlet ``concentration`` for dominant
    bins (higher = more skew toward them), ``background_concentration`` for
    the rest, ``outlier_fraction`` of images drawn from a flat Dirichlet
    (theme-less), and ``zero_threshold`` below which a bin is truncated to 0.
    """

    n_images: int = 70_000
    n_bins: int = 64
    n_themes: int = 10
    dominant_bins: int = 6
    concentration: float = 12.0
    background_concentration: float = 0.01
    outlier_fraction: float = 0.12
    zero_threshold: float = 1e-3

    def __post_init__(self) -> None:
        if self.n_images < 1:
            raise ValueError(f"n_images must be >= 1, got {self.n_images}")
        if self.n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {self.n_bins}")
        if self.n_themes < 1:
            raise ValueError(f"n_themes must be >= 1, got {self.n_themes}")
        if not 1 <= self.dominant_bins <= self.n_bins:
            raise ValueError(
                f"dominant_bins must be in [1, {self.n_bins}], "
                f"got {self.dominant_bins}"
            )
        if not 0.0 <= self.outlier_fraction < 1.0:
            raise ValueError(
                f"outlier_fraction must be in [0, 1), "
                f"got {self.outlier_fraction}"
            )


def generate_color_histograms(
    spec: ColorHistogramSpec, rng: np.random.Generator
) -> np.ndarray:
    """Sample an ``(n_images, n_bins)`` histogram matrix.

    Every row is non-negative and sums to 1 (up to float32-grade rounding),
    with most bins exactly zero — the skew the paper reports for the real
    Corel histograms.
    """
    n, b = spec.n_images, spec.n_bins
    # Theme templates: which bins dominate each theme.  Themes overlap
    # naturally because dominant sets are drawn independently.
    theme_alphas = np.full(
        (spec.n_themes, b), spec.background_concentration
    )
    for t in range(spec.n_themes):
        dominant = rng.choice(b, size=spec.dominant_bins, replace=False)
        # Unequal dominance within a theme: some colors matter more.
        weights = rng.uniform(0.3, 1.0, size=spec.dominant_bins)
        theme_alphas[t, dominant] += spec.concentration * weights

    n_outliers = int(n * spec.outlier_fraction)
    n_themed = n - n_outliers
    theme_of = rng.integers(0, spec.n_themes, size=n_themed)

    histograms = np.empty((n, b))
    for t in range(spec.n_themes):
        rows = np.flatnonzero(theme_of == t)
        if rows.size:
            histograms[rows] = rng.dirichlet(theme_alphas[t], size=rows.size)
    if n_outliers:
        flat_alpha = np.full(b, 0.3)
        histograms[n_themed:] = rng.dirichlet(flat_alpha, size=n_outliers)

    # Truncate trace bins to exact zeros and renormalize: real histograms
    # have many identically-zero attributes.
    histograms[histograms < spec.zero_threshold] = 0.0
    sums = histograms.sum(axis=1, keepdims=True)
    sums[sums == 0.0] = 1.0
    histograms /= sums

    rng.shuffle(histograms)
    return histograms
