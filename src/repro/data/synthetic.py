"""Appendix-A synthetic data: locally correlated clusters in rotated subspaces.

The paper's `Generate Correlated Dataset` (GCD, Figure 12) builds each
cluster as an axis-aligned box — wide (``variance_r``) along a contiguous run
of retained dimensions starting at ``s_r_dim``, narrow (``variance_e``)
everywhere else — and then rotates the whole cluster by a random orthonormal
matrix so its subspace is arbitrarily oriented.  The ratio
``variance_r / variance_e`` sets the cluster's energy ratio, i.e. its degree
of correlation / ellipticity; ``lb`` (the per-cluster lower bound) positions
the cluster.

``gen_float(lb, variance)`` in the paper returns a value uniform in
``[lb, lb + variance]``; we reproduce that and additionally support Gaussian
widths (the paper notes other distributions such as Zipfian are possible).

On top of the verbatim GCD we add the ξ noise points of Table 1: a
configurable fraction of points drawn uniformly from the data's bounding box,
labelled ``-1`` — these are the outliers MMDR's β filter should catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional, Sequence, Tuple

import numpy as np

from ..linalg.rotation import random_orthonormal

__all__ = ["ClusterSpec", "SyntheticSpec", "SyntheticDataset",
           "generate_correlated_clusters", "spec_for_ellipticity"]


@dataclass(frozen=True)
class ClusterSpec:
    """Parameters of one GCD cluster (one row of Figure 12's input arrays).

    Attributes mirror the pseudocode: ``size`` = EC_size[i], ``s_dim`` =
    number of retained dimensions, ``s_r_dim`` = index where the retained run
    starts, ``variance_r``/``variance_e`` = widths along retained/eliminated
    dimensions, ``lb`` = lower bound, ``rotate`` = whether to apply the
    random orthonormal rotation.
    """

    size: int
    s_dim: int
    s_r_dim: int
    variance_r: float
    variance_e: float
    lb: float
    rotate: bool = True
    #: When set, the cluster box is generated centered on the origin,
    #: rotated, and then translated by this d-dimensional offset.  This
    #: places differently-oriented ellipsoids so that they *intersect* — the
    #: regime of the paper's Figures 1 and 5, which verbatim Appendix-A
    #: positioning (per-dimension lower bounds before an origin-anchored
    #: rotation) scatters apart.  ``None`` keeps the verbatim behaviour.
    center_offset: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"cluster size must be >= 1, got {self.size}")
        if self.s_dim < 1:
            raise ValueError(f"s_dim must be >= 1, got {self.s_dim}")
        if self.s_r_dim < 0:
            raise ValueError(f"s_r_dim must be >= 0, got {self.s_r_dim}")
        if self.variance_r <= 0 or self.variance_e <= 0:
            raise ValueError("variances must be > 0")

    @property
    def energy_ratio(self) -> float:
        """variance_r / variance_e — the paper's correlation knob."""
        return self.variance_r / self.variance_e


@dataclass(frozen=True)
class SyntheticSpec:
    """High-level dataset request; expands to per-cluster :class:`ClusterSpec`.

    Either pass explicit ``clusters`` or let the constructor derive them from
    the aggregate knobs (equal sizes, staggered retained runs, shared
    variances).
    """

    n_points: int = 100_000
    dimensionality: int = 64
    n_clusters: int = 5
    retained_dims: int = 8
    variance_r: float = 0.4
    variance_e: float = 0.02
    noise_fraction: float = 0.0
    distribution: Literal["uniform", "gaussian"] = "uniform"
    rotate: bool = True
    clusters: Optional[Sequence[ClusterSpec]] = None

    def __post_init__(self) -> None:
        if self.n_points < 1:
            raise ValueError(f"n_points must be >= 1, got {self.n_points}")
        if self.dimensionality < 1:
            raise ValueError(
                f"dimensionality must be >= 1, got {self.dimensionality}"
            )
        if self.n_clusters < 1:
            raise ValueError(
                f"n_clusters must be >= 1, got {self.n_clusters}"
            )
        if not 0.0 <= self.noise_fraction < 1.0:
            raise ValueError(
                f"noise_fraction must be in [0, 1), got {self.noise_fraction}"
            )
        if self.retained_dims > self.dimensionality:
            raise ValueError(
                f"retained_dims {self.retained_dims} exceeds "
                f"dimensionality {self.dimensionality}"
            )

    def expand_clusters(self, rng: np.random.Generator) -> List[ClusterSpec]:
        """Materialize per-cluster specs (explicit list wins if provided)."""
        if self.clusters is not None:
            return list(self.clusters)
        n_noise = int(self.n_points * self.noise_fraction)
        n_clustered = self.n_points - n_noise
        base = n_clustered // self.n_clusters
        sizes = [base] * self.n_clusters
        for i in range(n_clustered - base * self.n_clusters):
            sizes[i] += 1
        specs = []
        d = self.dimensionality
        for i, size in enumerate(sizes):
            if size == 0:
                continue
            start = int(rng.integers(0, max(1, d - self.retained_dims + 1)))
            specs.append(
                ClusterSpec(
                    size=size,
                    s_dim=self.retained_dims,
                    s_r_dim=start,
                    variance_r=self.variance_r,
                    variance_e=self.variance_e,
                    lb=float(rng.uniform(0.0, 0.5)),
                    rotate=self.rotate,
                )
            )
        return specs


@dataclass
class SyntheticDataset:
    """Generated points plus the ground truth that produced them."""

    points: np.ndarray
    labels: np.ndarray  # cluster index per point, -1 for noise
    spec: SyntheticSpec
    cluster_specs: List[ClusterSpec] = field(default_factory=list)
    rotations: List[Optional[np.ndarray]] = field(default_factory=list)

    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self.points.shape[1]

    def cluster_points(self, cluster: int) -> np.ndarray:
        return self.points[self.labels == cluster]


def _gen_block(
    rng: np.random.Generator,
    shape: tuple,
    lb: float,
    variance: float,
    distribution: str,
) -> np.ndarray:
    """The paper's ``gen_float(lb, variance)`` applied to a whole block."""
    if distribution == "uniform":
        return rng.uniform(lb, lb + variance, size=shape)
    if distribution == "gaussian":
        # Same support scale: center of the interval, sd = variance/4 keeps
        # ~95% of mass inside [lb, lb+variance].
        return rng.normal(lb + variance / 2.0, variance / 4.0, size=shape)
    raise ValueError(f"unknown distribution {distribution!r}")


def generate_correlated_clusters(
    spec: SyntheticSpec, rng: np.random.Generator
) -> SyntheticDataset:
    """Run GCD (Figure 12) and return points, labels and ground truth.

    Points are emitted cluster by cluster and then shuffled, so data-stream
    order (used by Scalable MMDR) is not trivially pre-sorted by cluster.
    """
    cluster_specs = spec.expand_clusters(rng)
    d = spec.dimensionality
    blocks: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    rotations: List[Optional[np.ndarray]] = []
    for idx, cs in enumerate(cluster_specs):
        centered = cs.center_offset is not None
        lb_e = -cs.variance_e / 2.0 if centered else cs.lb
        lb_r = -cs.variance_r / 2.0 if centered else cs.lb
        block = _gen_block(
            rng, (cs.size, d), lb_e, cs.variance_e, spec.distribution
        )
        hi = min(cs.s_r_dim + cs.s_dim, d)
        block[:, cs.s_r_dim:hi] = _gen_block(
            rng, (cs.size, hi - cs.s_r_dim), lb_r, cs.variance_r,
            spec.distribution,
        )
        if cs.rotate:
            rotation = random_orthonormal(d, rng)
            block = block @ rotation
            rotations.append(rotation)
        else:
            rotations.append(None)
        if centered:
            offset = np.asarray(cs.center_offset, dtype=np.float64)
            if offset.shape != (d,):
                raise ValueError(
                    f"center_offset must have {d} components, "
                    f"got shape {offset.shape}"
                )
            block = block + offset
        blocks.append(block)
        labels.append(np.full(cs.size, idx, dtype=np.int64))

    n_clustered = sum(cs.size for cs in cluster_specs)
    n_noise = max(0, spec.n_points - n_clustered)
    if n_noise:
        stacked = np.vstack(blocks)
        lo, hi = stacked.min(axis=0), stacked.max(axis=0)
        noise = rng.uniform(lo, hi, size=(n_noise, d))
        blocks.append(noise)
        labels.append(np.full(n_noise, -1, dtype=np.int64))

    points = np.vstack(blocks)
    label_arr = np.concatenate(labels)
    order = rng.permutation(points.shape[0])
    return SyntheticDataset(
        points=points[order],
        labels=label_arr[order],
        spec=spec,
        cluster_specs=cluster_specs,
        rotations=rotations,
    )


def spec_for_ellipticity(
    ellipticity: float,
    n_points: int = 100_000,
    dimensionality: int = 64,
    n_clusters: int = 5,
    retained_dims: int = 8,
    base_minor: float = 0.02,
) -> SyntheticSpec:
    """A spec whose clusters have (approximately) the requested ellipticity.

    Definition 3.1's ``e = (b - a) / a`` maps onto GCD widths as
    ``variance_r = (1 + e) * variance_e`` — the retained radius is ``1 + e``
    times the eliminated radius.  Figure 7a sweeps this value.
    """
    if ellipticity < 0:
        raise ValueError(f"ellipticity must be >= 0, got {ellipticity}")
    return SyntheticSpec(
        n_points=n_points,
        dimensionality=dimensionality,
        n_clusters=n_clusters,
        retained_dims=retained_dims,
        variance_r=(1.0 + ellipticity) * base_minor,
        variance_e=base_minor,
    )
