"""Query workloads for the KNN experiments.

The paper evaluates with 100 queries, 10-NN, L2 search distance (§6).  Query
points follow the data distribution — the standard protocol when none is
stated is to draw them from the dataset itself, optionally with a small
perturbation so a query is not trivially its own nearest neighbor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal

import numpy as np

__all__ = ["QueryWorkload", "sample_queries"]


@dataclass(frozen=True)
class QueryWorkload:
    """A batch of query points plus the K for KNN evaluation."""

    queries: np.ndarray
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.queries.ndim != 2:
            raise ValueError(
                f"queries must be (n, d), got shape {self.queries.shape}"
            )

    @property
    def n_queries(self) -> int:
        return self.queries.shape[0]

    def chunks(self, n: int) -> List["QueryWorkload"]:
        """Split into ``n`` contiguous sub-workloads, in workload order.

        Contiguity matters for determinism: the parallel runner reassembles
        worker results chunk by chunk, so results and merged statistics come
        back in the original query order regardless of worker scheduling.
        Chunks may be empty when ``n`` exceeds the query count (np.array_split
        semantics), which keeps worker assignment trivially stable.
        """
        if n < 1:
            raise ValueError(f"chunk count must be >= 1, got {n}")
        return [
            QueryWorkload(queries=part, k=self.k)
            for part in np.array_split(self.queries, n)
        ]


def sample_queries(
    data: np.ndarray,
    n_queries: int,
    rng: np.random.Generator,
    k: int = 10,
    method: Literal["points", "perturbed"] = "points",
    perturbation: float = 0.01,
) -> QueryWorkload:
    """Draw a query workload from the data distribution.

    ``method="points"`` samples dataset rows verbatim (the paper's setup:
    queries follow the data).  ``method="perturbed"`` adds isotropic Gaussian
    noise of scale ``perturbation`` so queries land *near* the data manifold
    but not exactly on stored points.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    n = data.shape[0]
    if n == 0:
        raise ValueError("cannot sample queries from an empty dataset")
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    rows = rng.choice(n, size=n_queries, replace=n_queries > n)
    queries = data[rows].copy()
    if method == "perturbed":
        queries += rng.normal(0.0, perturbation, size=queries.shape)
    elif method != "points":
        raise ValueError(f"unknown method {method!r}")
    return QueryWorkload(queries=queries, k=k)
