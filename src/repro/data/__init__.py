"""Datasets and workloads for the reproduction.

* :func:`generate_correlated_clusters` — the paper's Appendix-A GCD
  generator (rotated, locally correlated clusters).
* :func:`generate_color_histograms` — simulated Corel 64-d color histograms
  (skewed, sparse, loosely themed; see DESIGN.md substitutions).
* :func:`sample_queries` — the 100-query / 10-NN workloads of §6.
"""

from .colorhist import ColorHistogramSpec, generate_color_histograms
from .synthetic import (
    ClusterSpec,
    SyntheticDataset,
    SyntheticSpec,
    generate_correlated_clusters,
    spec_for_ellipticity,
)
from .workload import QueryWorkload, sample_queries

__all__ = [
    "ClusterSpec",
    "ColorHistogramSpec",
    "QueryWorkload",
    "SyntheticDataset",
    "SyntheticSpec",
    "generate_color_histograms",
    "generate_correlated_clusters",
    "sample_queries",
    "spec_for_ellipticity",
]
