"""Fault-tolerant sharded serving layer (DESIGN.md §14).

One logical MMDR/iDistance index is served from N shard worker processes:

* :class:`~repro.serve.planner.ShardPlanner` partitions a
  :class:`~repro.reduction.base.ReducedDataset` across shards —
  partition-aligned for the extended iDistance (each ellipsoid is an
  independently searchable reduced subspace, §4 of the paper), hash-of-rid
  for SequentialScan / GlobalLDR;
* :class:`~repro.serve.supervisor.Supervisor` builds each shard's index,
  checkpoints it (snapshot + WAL), and keeps one
  :class:`~repro.serve.worker.ShardWorker` process per shard alive —
  respawning crashed workers through real snapshot + WAL recovery;
* :class:`~repro.serve.router.Router` scatter-gathers per-shard top-K over
  a length-prefixed CRC-framed socket protocol and merges into the exact
  global top-K, with a per-request robustness ladder: deadline → hedge →
  bounded retry with backoff → supervised respawn → route-around
  (``partial=True`` naming the missing shards), plus a per-shard circuit
  breaker fed by heartbeats and admission control (bounded in-flight,
  typed :class:`~repro.serve.router.OverloadError` shed).

Merged answers are sha256-fingerprint-identical to the single-node index
by construction: shards hold disjoint rid sets with bit-identical reduced
representations (same subspace bases, same projections — only subset
rows), so the union of per-shard top-K contains the global top-K, and the
merge is a deterministic (distance, rid) sort.  Every rung of the ladder
is deterministically testable via :class:`~repro.serve.faults.
WorkerFaultSpec` (kill/hang/garble/drop on the N-th request) and per-shard
seeded :class:`~repro.storage.faults.FaultPlan` storage faults.
"""

from .faults import WorkerFaultSpec
from .planner import ShardAssignment, ShardPlan, ShardPlanner
from .protocol import (
    ConnectionLostError,
    GarbledFrameError,
    ProtocolError,
    ServeError,
)
from .router import (
    NoShardsAvailableError,
    OverloadError,
    RollingSwapReport,
    Router,
    RouterConfig,
    RouterResult,
    ShardUnavailableError,
)
from .supervisor import Supervisor
from .breaker import BreakerState, CircuitBreaker

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ConnectionLostError",
    "GarbledFrameError",
    "NoShardsAvailableError",
    "OverloadError",
    "ProtocolError",
    "RollingSwapReport",
    "Router",
    "RouterConfig",
    "RouterResult",
    "ServeError",
    "ShardAssignment",
    "ShardPlan",
    "ShardPlanner",
    "ShardUnavailableError",
    "Supervisor",
    "WorkerFaultSpec",
]
