"""Per-shard circuit breaker: closed → open → half-open → closed.

A shard that keeps failing should stop costing every request a full
deadline + retry ladder.  The breaker watches consecutive failures
(request failures and heartbeat failures feed the same breaker) and trips
OPEN at a threshold; while OPEN the router routes around the shard
instantly.  After a cooldown the breaker admits exactly one probe
(HALF_OPEN); a successful probe closes it, a failed one re-opens it with a
fresh cooldown.

The clock is injectable so tests drive the OPEN → HALF_OPEN transition
without sleeping.
"""

from __future__ import annotations

import enum
import time
from typing import Callable, Optional

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a single-probe half-open state.

    Not thread-safe by itself; the router holds its per-shard lock around
    every interaction with a shard, which covers the breaker too.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[BreakerState, BreakerState], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._on_transition = on_transition
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._opened_at: Optional[float] = None
        #: True while the single half-open probe is outstanding.
        self._probe_inflight = False

    def _transition(self, new: BreakerState) -> None:
        old = self.state
        if old is new:
            return
        self.state = new
        if self._on_transition is not None:
            self._on_transition(old, new)

    def allow_request(self) -> bool:
        """May the caller contact the shard right now?

        OPEN past its cooldown flips to HALF_OPEN and admits one probe;
        OPEN within the cooldown (or HALF_OPEN with the probe already out)
        refuses.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if (
                self._opened_at is not None
                and self._clock() - self._opened_at >= self.cooldown_s
            ):
                self._transition(BreakerState.HALF_OPEN)
                self._probe_inflight = True
                return True
            return False
        # HALF_OPEN: exactly one probe at a time.
        if not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probe_inflight = False
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)
        self._opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: back to OPEN with a fresh cooldown.
            self._probe_inflight = False
            self._opened_at = self._clock()
            self._transition(BreakerState.OPEN)
            return
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self._clock()
            self._transition(BreakerState.OPEN)
