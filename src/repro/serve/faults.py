"""Seeded process-level fault injection for shard workers.

:mod:`repro.storage.faults` injects faults *below* an index (torn pages,
transient reads); serving adds a second failure domain — the worker
process and its connection.  A :class:`WorkerFaultSpec` rides into the
worker at spawn time and fires deterministically on the N-th KNN request
the process receives, covering exactly the failure modes the router's
ladder has a rung for:

==================  ====================================================
``kill_on_request``  SIGKILL mid-request → EOF at the router
                     (``ConnectionLostError``) → supervised respawn.
``hang_on_request``  Sleep ``hang_s`` before replying → deadline expiry
                     at the router → hedge and/or retry.
``garble_on_request`` Reply with a bit-flipped payload (CRC intact
                     length prefix) → ``GarbledFrameError`` → retry on
                     the same, still-aligned connection.
``drop_on_request``  Swallow the reply entirely → deadline expiry with
                     a healthy worker → the hedged duplicate wins.
==================  ====================================================

Ordinals are 1-based and count every KNN request the worker *receives* —
hedged duplicates and retries included, which is what makes "the retry
succeeds" deterministic: the fault fired on request 1, the retry is
request 2.  ``persistent=False`` (default) means the fault belongs to one
process life: the supervisor drops the spec on respawn, so recovery
genuinely recovers.  ``persistent=True`` re-arms the spec in every
respawned worker — the route-around rung (a shard that never comes back).

``storage_plan`` additionally wraps the worker's store in a seeded
:class:`~repro.storage.faults.FaultPlan` at startup, so storage-level and
process-level faults compose in one shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..storage.faults import FaultPlan

__all__ = ["WorkerFaultSpec"]


@dataclass(frozen=True)
class WorkerFaultSpec:
    """Deterministic fault schedule for one shard worker process."""

    kill_on_request: Optional[int] = None
    hang_on_request: Optional[int] = None
    hang_s: float = 1.0
    garble_on_request: Optional[int] = None
    drop_on_request: Optional[int] = None
    #: Re-arm in every respawned process (route-around scenarios) instead
    #: of dying with the first process (recovery scenarios).
    persistent: bool = False
    #: Storage-level faults enabled on the worker's index at startup.
    storage_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        for name in (
            "kill_on_request",
            "hang_on_request",
            "garble_on_request",
            "drop_on_request",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(
                    f"{name} is a 1-based request ordinal, got {value}"
                )
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s}")

    def _fires(self, ordinal: int, at: Optional[int]) -> bool:
        if at is None:
            return False
        return ordinal >= at if self.persistent else ordinal == at

    def should_kill(self, ordinal: int) -> bool:
        return self._fires(ordinal, self.kill_on_request)

    def should_hang(self, ordinal: int) -> bool:
        return self._fires(ordinal, self.hang_on_request)

    def should_garble(self, ordinal: int) -> bool:
        return self._fires(ordinal, self.garble_on_request)

    def should_drop(self, ordinal: int) -> bool:
        return self._fires(ordinal, self.drop_on_request)
