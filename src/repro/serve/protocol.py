"""Length-prefixed, CRC-framed message protocol between router and workers.

One frame on the wire::

    +-------+-------------+-------+---------+
    | magic | payload_len | crc32 | payload |
    | 4s    | u32         | u32   | bytes   |
    +-------+-------------+-------+---------+

``crc32`` covers the payload (the pickled message dict), so a garbled
response — a worker writing junk, a fault injector flipping bits — is
*detected* as :class:`GarbledFrameError` rather than deserialized into a
wrong answer; because the frame length is still intact the stream stays in
sync and the next frame is readable, which is what makes the router's
retry rung meaningful.  A bad magic means the stream itself is lost
(:class:`ConnectionLostError`): there is no resynchronization point, so
the only recovery is a fresh worker.

Messages are dicts with an ``"op"`` key (``knn``, ``ping``, ``shutdown``
and their responses).  numpy arrays ride along pickled; within one machine
(router and workers are forked from one process) equal state pickles to
equal bytes, the same property the page checksums rely on.

:class:`FrameReader` buffers partial reads across socket timeouts — a
deadline can expire mid-frame, and the half-read bytes must survive into
the retry or the next request would start misaligned.
"""

from __future__ import annotations

import pickle
import socket
import struct
import zlib
from typing import Any, Optional

__all__ = [
    "MAGIC",
    "ServeError",
    "ProtocolError",
    "GarbledFrameError",
    "ConnectionLostError",
    "encode_frame",
    "garble_frame",
    "send_message",
    "FrameReader",
]

#: Frame magic: cheap stream-alignment check ahead of the CRC.
MAGIC = b"SRV1"

_HEADER = struct.Struct("<4sII")


class ServeError(RuntimeError):
    """Base class for serving-layer failures."""


class ProtocolError(ServeError):
    """A message violated the protocol contract (caller bug, never
    recoverable at runtime): unknown op, reply without a request, a frame
    larger than the declared cap."""


class GarbledFrameError(ServeError):
    """A frame's payload failed its CRC: the stream is still aligned (the
    length prefix was intact) but this message is lost.  Retriable — the
    router's retry rung resends the request."""


class ConnectionLostError(ServeError):
    """The stream ended (EOF, reset) or lost alignment (bad magic).  Not
    retriable on this connection — the worker must be respawned."""


def encode_frame(message: Any) -> bytes:
    """Frame one message for the wire."""
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, len(body), crc) + body


def garble_frame(frame: bytes) -> bytes:
    """Flip one payload bit of an encoded frame (fault injection).

    The length prefix stays intact so the receiving stream keeps its
    alignment; the CRC check fails, which is exactly the failure mode
    :class:`GarbledFrameError` models.
    """
    if len(frame) <= _HEADER.size:
        raise ValueError("frame has no payload to garble")
    corrupted = bytearray(frame)
    corrupted[_HEADER.size] ^= 0x01
    return bytes(corrupted)


def send_message(sock: socket.socket, message: Any) -> None:
    """Frame and send one message (blocking, whole frame)."""
    try:
        sock.sendall(encode_frame(message))
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise ConnectionLostError(f"send failed: {exc}") from exc


class FrameReader:
    """Buffered frame reader that survives timeouts mid-frame."""

    #: Refuse absurd frames (a corrupted length prefix could otherwise ask
    #: for gigabytes).  64 MiB comfortably fits any workload this
    #: reproduction ships between processes.
    MAX_FRAME_BYTES = 64 * 1024 * 1024

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._buffer = bytearray()

    def _fill(self, needed: int, timeout: Optional[float]) -> None:
        """Grow the buffer to ``needed`` bytes or raise.

        ``timeout`` is the *total* budget for this call; ``None`` blocks.
        Raises ``socket.timeout`` with the partial bytes kept buffered, or
        :class:`ConnectionLostError` on EOF.
        """
        import time as _time

        deadline = (
            _time.monotonic() + timeout if timeout is not None else None
        )
        while len(self._buffer) < needed:
            if deadline is not None:
                remaining = deadline - _time.monotonic()
                if remaining <= 0:
                    raise socket.timeout("frame read timed out")
                self.sock.settimeout(remaining)
            else:
                self.sock.settimeout(None)
            try:
                chunk = self.sock.recv(65536)
            except socket.timeout:
                raise
            except (ConnectionResetError, OSError) as exc:
                raise ConnectionLostError(f"recv failed: {exc}") from exc
            if not chunk:
                raise ConnectionLostError("connection closed by peer")
            self._buffer.extend(chunk)

    def read_message(self, timeout: Optional[float] = None) -> Any:
        """Read one message; raises ``socket.timeout`` /
        :class:`GarbledFrameError` / :class:`ConnectionLostError`."""
        self._fill(_HEADER.size, timeout)
        magic, length, crc = _HEADER.unpack_from(self._buffer, 0)
        if magic != MAGIC:
            raise ConnectionLostError(
                f"stream lost alignment (magic {magic!r})"
            )
        if length > self.MAX_FRAME_BYTES:
            raise ConnectionLostError(
                f"frame declares {length} bytes (cap "
                f"{self.MAX_FRAME_BYTES}); stream considered corrupt"
            )
        self._fill(_HEADER.size + length, timeout)
        body = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
        # Consume the frame *before* CRC verification: a garbled frame is
        # dropped, the stream stays readable.
        del self._buffer[: _HEADER.size + length]
        actual = zlib.crc32(body) & 0xFFFFFFFF
        if actual != crc:
            raise GarbledFrameError(
                f"frame payload failed CRC (stored 0x{crc:08x}, "
                f"computed 0x{actual:08x})"
            )
        try:
            return pickle.loads(body)
        except Exception as exc:  # CRC collision on garbage
            raise GarbledFrameError(
                f"frame payload failed to deserialize: {exc}"
            ) from exc
