"""Shard worker process: serve KNN over one shard's index.

A worker is forked by the :class:`~repro.serve.supervisor.Supervisor` with
one end of a socketpair and a shard directory on disk.  Startup *is* the
recovery path: the worker rebuilds its index via
:func:`repro.recovery.recover` from the shard's checkpoint snapshot +
write-ahead log — the same code a post-crash respawn runs, so every spawn
exercises real recovery rather than a happy-path loader.  The shard's
``rid_map.npy`` translates shard-local rids back to global rids on the way
out; the router only ever sees global ids.

The loop is single-threaded and synchronous: read one framed request,
answer it, repeat.  Robustness against a *misbehaving router* is the
frame CRC; robustness against a *misbehaving worker* is the router's
ladder, driven deterministically by the optional
:class:`~repro.serve.faults.WorkerFaultSpec` (kill / hang / garble / drop
on the N-th request this process received — hedged duplicates count, which
is what makes "the retry succeeds" reproducible).

Per-request exceptions become typed error replies, never a dead worker:
an :class:`~repro.index.base.InvalidQueryError` must not look like a
crashed shard to the breaker.
"""

from __future__ import annotations

import os
import signal
import socket
import time
from pathlib import Path
from typing import Optional

import numpy as np

from ..index.base import InvalidQueryError
from ..obs.tracer import Tracer
from ..persist.snapshot import load_index
from ..recovery import recover
from .faults import WorkerFaultSpec
from .protocol import (
    ConnectionLostError,
    FrameReader,
    encode_frame,
    garble_frame,
    send_message,
)

__all__ = ["WAL_NAME", "SNAPSHOT_NAME", "RID_MAP_NAME", "worker_main"]

WAL_NAME = "wal.log"
SNAPSHOT_NAME = "ckpt"
RID_MAP_NAME = "rid_map.npy"


def load_shard(shard_dir: Path):
    """Recover a shard's index + rid_map from its on-disk state.

    Prefers the recovery path (checkpoint + WAL) whenever a log exists;
    falls back to the bare snapshot for shards prepared without WAL.
    """
    shard_dir = Path(shard_dir)
    wal_path = shard_dir / WAL_NAME
    if wal_path.is_file():
        index, _report = recover(
            wal_path, snapshot_path=shard_dir / SNAPSHOT_NAME
        )
    else:
        index = load_index(shard_dir / SNAPSHOT_NAME)
    rid_map = np.load(shard_dir / RID_MAP_NAME)
    return index, rid_map


def translate_ids(ids: np.ndarray, rid_map: np.ndarray) -> np.ndarray:
    """Map shard-local rids to global rids, preserving ``-1`` fill values
    (invalid-query rows)."""
    ids = np.asarray(ids, dtype=np.int64)
    if rid_map.size == 0:
        return ids
    safe = np.clip(ids, 0, rid_map.size - 1)
    return np.where(ids >= 0, rid_map[safe], np.int64(-1))


def _handle_knn(index, rid_map, request: dict, shard_id: int) -> dict:
    queries = request["queries"]
    k = int(request["k"])
    # A shard may hold fewer than k points; it then contributes its whole
    # holding and the router's merge pads from the other shards.
    k_eff = max(1, min(k, index.live_count))
    trace_id = request.get("trace_id")
    tracer: Optional[Tracer] = (
        Tracer(counters=index.counters, trace_id=trace_id)
        if trace_id is not None
        else None
    )
    result = index.knn_batch(queries, k_eff, tracer=tracer)
    reply = {
        "op": "knn_result",
        "req_id": request["req_id"],
        "shard": shard_id,
        "dup": bool(request.get("dup", False)),
        "ids": translate_ids(result.ids, rid_map),
        "distances": result.distances,
        "stats": result.stats,
        "invalid": result.invalid_queries,
        "wall_seconds": result.wall_seconds,
    }
    if tracer is not None:
        reply["spans"] = tracer.spans
        reply["metrics"] = tracer.metrics.as_records()
    return reply


def serve_loop(
    sock: socket.socket,
    shard_id: int,
    index,
    rid_map: np.ndarray,
    fault_spec: Optional[WorkerFaultSpec] = None,
) -> None:
    """Answer framed requests until shutdown or router disconnect."""
    reader = FrameReader(sock)
    knn_ordinal = 0
    while True:
        try:
            request = reader.read_message(timeout=None)
        except ConnectionLostError:
            return  # router went away; nothing to serve
        op = request.get("op")
        if op == "shutdown":
            send_message(sock, {"op": "bye", "shard": shard_id})
            return
        if op == "ping":
            send_message(
                sock,
                {
                    "op": "pong",
                    "req_id": request.get("req_id"),
                    "shard": shard_id,
                    "pid": os.getpid(),
                    "live_count": index.live_count,
                },
            )
            continue
        if op != "knn":
            send_message(
                sock,
                {
                    "op": "error",
                    "req_id": request.get("req_id"),
                    "shard": shard_id,
                    "error_type": "ProtocolError",
                    "message": f"unknown op {op!r}",
                },
            )
            continue

        knn_ordinal += 1
        if fault_spec is not None:
            if fault_spec.should_kill(knn_ordinal):
                # SIGKILL leaves no chance for cleanup — the router sees a
                # hard EOF, exactly like an OOM kill or a segfault.
                os.kill(os.getpid(), signal.SIGKILL)
            if fault_spec.should_hang(knn_ordinal):
                time.sleep(fault_spec.hang_s)
            if fault_spec.should_drop(knn_ordinal):
                continue  # swallow the reply; the router's deadline fires

        try:
            reply = _handle_knn(index, rid_map, request, shard_id)
        except InvalidQueryError as exc:
            reply = {
                "op": "error",
                "req_id": request.get("req_id"),
                "shard": shard_id,
                "error_type": "InvalidQueryError",
                "message": str(exc),
            }
        except Exception as exc:  # typed reply, never a dead worker
            reply = {
                "op": "error",
                "req_id": request.get("req_id"),
                "shard": shard_id,
                "error_type": type(exc).__name__,
                "message": str(exc),
            }

        frame = encode_frame(reply)
        if fault_spec is not None and fault_spec.should_garble(knn_ordinal):
            frame = garble_frame(frame)
        try:
            sock.sendall(frame)
        except (BrokenPipeError, ConnectionResetError, OSError):
            return


def worker_main(
    sock: socket.socket,
    shard_id: int,
    shard_dir: str,
    fault_spec: Optional[WorkerFaultSpec] = None,
) -> None:
    """Child-process entry point (runs in the forked worker).

    Exits via ``os._exit`` so the forked copy of the parent's runtime
    (atexit hooks, multiprocessing bookkeeping) never runs in the child.
    """
    try:
        index, rid_map = load_shard(Path(shard_dir))
        if fault_spec is not None and fault_spec.storage_plan is not None:
            index.enable_faults(fault_spec.storage_plan)
        serve_loop(sock, shard_id, index, rid_map, fault_spec)
    except BaseException:
        os._exit(1)
    finally:
        os._exit(0)
