"""Partition a built reduction across N shards, exactly.

The merge at the router is only *exact* if every shard computes the same
distance for a point as the single-node index would.  Both split modes
guarantee that by construction: a shard's :class:`~repro.reduction.base.
ReducedDataset` keeps each subspace's mean/basis/covariance byte-for-byte
and takes *row subsets* of its projections — a point's distance to a query
depends only on its own reduced representation (or raw vector, for
outliers) and the query, never on which other points share the shard.
The union of per-shard exact top-K therefore contains the global top-K,
and a deterministic (distance, rid) merge recovers it.

Two modes:

* ``"partition"`` — whole ellipsoids: subspace ``i`` lands on shard
  ``i % n_shards``, outliers split by ``rid % n_shards``.  Aligned with
  the paper's search structure (each ellipsoid is independently
  searchable, §4), so a query prunes whole shards exactly as the
  single-node iDistance prunes whole partitions.  Needs at least as many
  subspaces(+outliers) as shards.
* ``"hash"`` — every subspace's members split by ``rid % n_shards``; each
  shard gets a thinner copy of every subspace.  Works for any scheme and
  shard count (SequentialScan / GlobalLDR have no partition alignment to
  exploit), at the cost of every shard touching every query.

Shard-local rid space: index build paths size arrays by ``n_points`` and
index them by rid, so a shard cannot keep global rids.  Each shard
renumbers its points ``0..m-1`` (subspaces in order, then outliers) and
carries ``rid_map`` (local → global, int64); the worker translates ids on
the way out, so the router only ever sees global rids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.subspace import EllipticalSubspace, OutlierSet
from ..reduction.base import ReducedDataset

__all__ = ["ShardAssignment", "ShardPlan", "ShardPlanner", "mode_for_scheme"]

_MODES = ("partition", "hash")


def mode_for_scheme(scheme: str) -> str:
    """The natural split mode for an index scheme (ISSUE/DESIGN.md §14):
    partition-aligned for the extended iDistance, hash-of-rid otherwise."""
    return "partition" if scheme == "iMMDR" else "hash"


@dataclass(frozen=True)
class ShardAssignment:
    """One shard's slice of the reduction, in shard-local rid space."""

    shard_id: int
    #: Shard-local reduction: member_ids renumbered 0..m-1, projections /
    #: outlier points row-subset from the global arrays (same floats).
    reduced: ReducedDataset
    #: ``rid_map[local_rid] == global_rid`` (int64, length m).
    rid_map: np.ndarray

    @property
    def n_points(self) -> int:
        return int(self.rid_map.size)


@dataclass(frozen=True)
class ShardPlan:
    """A complete, disjoint, covering assignment of points to shards."""

    mode: str
    n_shards: int
    n_points: int
    dimensionality: int
    metric: str
    shards: Tuple[ShardAssignment, ...]

    def __post_init__(self) -> None:
        covered = sum(s.n_points for s in self.shards)
        if covered != self.n_points:
            raise ValueError(
                f"shards cover {covered} points, dataset has {self.n_points}"
            )

    def describe(self) -> str:
        sizes = ", ".join(
            f"shard {s.shard_id}: {s.n_points} pts "
            f"({s.reduced.n_subspaces} subspaces, "
            f"{s.reduced.outliers.size} outliers)"
            for s in self.shards
        )
        return (
            f"ShardPlan(mode={self.mode}, {self.n_shards} shards over "
            f"{self.n_points} points): {sizes}"
        )


class ShardPlanner:
    """Builds a :class:`ShardPlan` from a fitted reduction."""

    def __init__(self, n_shards: int, mode: str = "hash") -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.n_shards = n_shards
        self.mode = mode

    # -- assignment ------------------------------------------------------

    def _subspace_masks(
        self, reduced: ReducedDataset, shard: int
    ) -> List[np.ndarray]:
        """Per-subspace boolean member masks owned by ``shard``."""
        masks = []
        for idx, subspace in enumerate(reduced.subspaces):
            if self.mode == "partition":
                own = idx % self.n_shards == shard
                masks.append(
                    np.full(subspace.size, own, dtype=bool)
                )
            else:
                masks.append(subspace.member_ids % self.n_shards == shard)
        return masks

    def plan(self, reduced: ReducedDataset) -> ShardPlan:
        """Split ``reduced`` into ``n_shards`` disjoint shard reductions.

        Raises ``ValueError`` when any shard would end up empty (the
        dataset has fewer partitions/points than shards): an empty shard
        cannot build an index, and silently planning fewer shards than
        asked for would make the router's topology lie.
        """
        shards: List[ShardAssignment] = []
        for shard in range(self.n_shards):
            masks = self._subspace_masks(reduced, shard)
            outlier_mask = (
                reduced.outliers.member_ids % self.n_shards == shard
                if reduced.outliers.size
                else np.zeros(0, dtype=bool)
            )
            total = int(sum(int(m.sum()) for m in masks)) + int(
                outlier_mask.sum()
            )
            if total == 0:
                raise ValueError(
                    f"shard {shard} of {self.n_shards} would be empty "
                    f"(mode={self.mode!r}, {reduced.n_subspaces} subspaces, "
                    f"{reduced.outliers.size} outliers); use fewer shards "
                    f"or mode='hash'"
                )
            rid_chunks: List[np.ndarray] = []
            subspaces: List[EllipticalSubspace] = []
            cursor = 0
            for subspace, mask in zip(reduced.subspaces, masks):
                count = int(mask.sum())
                if count == 0:
                    continue
                rid_chunks.append(subspace.member_ids[mask])
                subspaces.append(
                    EllipticalSubspace(
                        subspace_id=len(subspaces),
                        mean=subspace.mean,
                        basis=subspace.basis,
                        covariance=subspace.covariance,
                        member_ids=np.arange(
                            cursor, cursor + count, dtype=np.int64
                        ),
                        projections=subspace.projections[mask],
                        discovered_at_dim=subspace.discovered_at_dim,
                        mpe=subspace.mpe,
                        ellipticity=subspace.ellipticity,
                    )
                )
                cursor += count
            n_out = int(outlier_mask.sum())
            if n_out:
                rid_chunks.append(reduced.outliers.member_ids[outlier_mask])
                out_points = reduced.outliers.points[outlier_mask]
            else:
                out_points = np.empty(
                    (0, reduced.dimensionality), dtype=np.float64
                )
            outliers = OutlierSet(
                member_ids=np.arange(
                    cursor, cursor + n_out, dtype=np.int64
                ),
                points=out_points,
            )
            rid_map = (
                np.concatenate(rid_chunks)
                if rid_chunks
                else np.empty(0, dtype=np.int64)
            ).astype(np.int64, copy=False)
            shard_reduced = ReducedDataset(
                method=reduced.method,
                subspaces=subspaces,
                outliers=outliers,
                n_points=total,
                dimensionality=reduced.dimensionality,
                info=dict(
                    reduced.info,
                    shard_id=float(shard),
                    shard_of=float(self.n_shards),
                ),
                metric=getattr(reduced, "metric", "l2"),
            )
            shards.append(
                ShardAssignment(
                    shard_id=shard, reduced=shard_reduced, rid_map=rid_map
                )
            )
        return ShardPlan(
            mode=self.mode,
            n_shards=self.n_shards,
            n_points=reduced.n_points,
            dimensionality=reduced.dimensionality,
            metric=getattr(reduced, "metric", "l2"),
            shards=tuple(shards),
        )
