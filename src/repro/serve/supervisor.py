"""Builds, checkpoints, and keeps alive one worker process per shard.

``prepare()`` turns a :class:`~repro.serve.planner.ShardPlan` into on-disk
shard state: each shard's index is built from its local reduction, put
under write-ahead logging, and checkpointed (snapshot + truncated WAL)
into ``<root>/shard_<id>/``, alongside the shard's ``rid_map.npy``.  The
supervisor then *never ships a live index to a worker*: every spawn —
first boot and post-crash respawn alike — rebuilds from checkpoint + WAL
via :func:`repro.recovery.recover`, so the recovery path is exercised on
every process start, not just after disasters.

Workers are forked (one socketpair each); fork is required — the spawn
start method would re-import and re-pickle, and the platforms this
repository targets in CI all provide fork.  ``respawn()`` is the router's
rung for dead or hung workers: SIGKILL whatever is left, fork a fresh
process from the same durable state.

Fault specs (:class:`~repro.serve.faults.WorkerFaultSpec`) are handed to
the worker at spawn; a non-``persistent`` spec is consumed by the first
spawn, so a respawned worker comes back clean (recovery scenarios), while
a ``persistent`` spec re-arms every life (route-around scenarios).
"""

from __future__ import annotations

import multiprocessing
import socket
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Union

import numpy as np

from ..bench.spec import INDEX_SCHEMES
from ..recovery import checkpoint
from ..storage.mmap_store import MmapPageStore
from .faults import WorkerFaultSpec
from .planner import ShardPlan
from .protocol import FrameReader, send_message
from .worker import RID_MAP_NAME, SNAPSHOT_NAME, WAL_NAME, worker_main

__all__ = ["WorkerHandle", "Supervisor"]


@dataclass
class WorkerHandle:
    """The parent's view of one live worker: process + framed channel."""

    process: multiprocessing.process.BaseProcess
    sock: socket.socket
    reader: FrameReader
    generation: int


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX platforms
        raise RuntimeError(
            "the serving layer requires the fork start method"
        ) from exc


class Supervisor:
    """Owns shard state on disk and the worker process per shard."""

    def __init__(
        self,
        plan: ShardPlan,
        scheme: str,
        root: Union[str, Path],
        store: str = "memory",
    ) -> None:
        if scheme not in INDEX_SCHEMES:
            raise ValueError(
                f"unknown scheme {scheme!r}; expected one of "
                f"{sorted(INDEX_SCHEMES)}"
            )
        if store not in ("memory", "mmap"):
            raise ValueError(
                f"store must be 'memory' or 'mmap', got {store!r}"
            )
        self.plan = plan
        self.scheme = scheme
        self.root = Path(root)
        self.store = store
        self.workers: Dict[int, WorkerHandle] = {}
        self.spawn_counts: Dict[int, int] = {}
        self._fault_specs: Dict[int, WorkerFaultSpec] = {}
        self._ctx = _fork_context()
        self._prepared = False
        #: Per-shard directory overrides installed by :meth:`swap_shard`
        #: (generational swaps); shards not listed serve from ``root``.
        self._shard_dirs: Dict[int, Path] = {}

    # -- shard state on disk --------------------------------------------

    def shard_dir(self, shard_id: int) -> Path:
        override = self._shard_dirs.get(shard_id)
        if override is not None:
            return override
        return self.root / f"shard_{shard_id}"

    @property
    def shard_ids(self):
        return [a.shard_id for a in self.plan.shards]

    def _prepare_shard(self, assignment, sdir: Path) -> None:
        """Build + checkpoint one shard assignment into ``sdir``."""
        factory: Optional[Callable] = (
            MmapPageStore if self.store == "mmap" else None
        )
        build = INDEX_SCHEMES[self.scheme]
        sdir.mkdir(parents=True, exist_ok=True)
        index = build(assignment.reduced, store_factory=factory)
        index.enable_wal(sdir / WAL_NAME)
        checkpoint(index, sdir / SNAPSHOT_NAME)
        wal_store = index.disable_wal()
        wal_store.wal.close()
        # Release the build-time physical store (mmap file handles);
        # workers rehydrate their own from the snapshot.
        index.store.close()
        np.save(sdir / RID_MAP_NAME, assignment.rid_map)

    def prepare(self) -> None:
        """Build + checkpoint every shard's index into its directory."""
        for assignment in self.plan.shards:
            self._prepare_shard(
                assignment, self.shard_dir(assignment.shard_id)
            )
        self._prepared = True

    # -- generational swap ------------------------------------------------

    def prepare_generation(
        self, new_plan: ShardPlan, new_root: Union[str, Path]
    ) -> Dict[int, Path]:
        """Build a new index generation's shard state under ``new_root``
        without touching any live worker (swap protocol step 1: *build*).

        The new plan must be shard-compatible with the live one — same
        shard ids, dimensionality, metric, and mode — because the router
        keeps scattering every request to every shard id while the swap
        rolls.  Returns ``{shard_id: shard_dir}`` for :meth:`swap_shard`.
        """
        live = self.plan
        if [a.shard_id for a in new_plan.shards] != [
            a.shard_id for a in live.shards
        ]:
            raise ValueError(
                "new plan's shard ids "
                f"{[a.shard_id for a in new_plan.shards]} do not match the "
                f"live plan's {[a.shard_id for a in live.shards]}"
            )
        for attr in ("dimensionality", "metric", "mode"):
            if getattr(new_plan, attr) != getattr(live, attr):
                raise ValueError(
                    f"new plan's {attr} ({getattr(new_plan, attr)!r}) does "
                    f"not match the live plan's "
                    f"({getattr(live, attr)!r})"
                )
        new_root = Path(new_root)
        dirs: Dict[int, Path] = {}
        for assignment in new_plan.shards:
            sdir = new_root / f"shard_{assignment.shard_id}"
            self._prepare_shard(assignment, sdir)
            dirs[assignment.shard_id] = sdir
        return dirs

    def swap_shard(self, shard_id: int, new_dir: Path) -> WorkerHandle:
        """Point one shard at a new generation's directory and respawn its
        worker from that state (the caller is responsible for draining the
        shard's in-flight requests first — see ``Router.rolling_swap``)."""
        if shard_id not in (a.shard_id for a in self.plan.shards):
            raise ValueError(f"unknown shard id {shard_id}")
        self._shard_dirs[shard_id] = Path(new_dir)
        return self.respawn(shard_id)

    def adopt_plan(self, new_plan: ShardPlan) -> None:
        """Install the new generation's plan as the live one (after every
        shard has swapped)."""
        self.plan = new_plan

    # -- fault injection -------------------------------------------------

    def set_fault_spec(self, shard_id: int, spec: WorkerFaultSpec) -> None:
        """Arm a fault spec for ``shard_id``'s *next* spawn (call before
        :meth:`start`).  Non-persistent specs are consumed by that spawn."""
        self._fault_specs[shard_id] = spec

    # -- process lifecycle ----------------------------------------------

    def start(self) -> None:
        if not self._prepared:
            self.prepare()
        for shard_id in self.shard_ids:
            self.spawn(shard_id)

    def spawn(self, shard_id: int) -> WorkerHandle:
        if shard_id in self.workers:
            raise RuntimeError(
                f"shard {shard_id} already has a live worker; use respawn"
            )
        generation = self.spawn_counts.get(shard_id, 0)
        spec = self._fault_specs.get(shard_id)
        if spec is not None and generation > 0 and not spec.persistent:
            del self._fault_specs[shard_id]
            spec = None
        parent_sock, child_sock = socket.socketpair()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_sock, shard_id, str(self.shard_dir(shard_id)), spec),
            daemon=True,
        )
        process.start()
        # The parent's copy of the child end must close, or a dead worker
        # would never surface as EOF on the parent's socket.
        child_sock.close()
        handle = WorkerHandle(
            process=process,
            sock=parent_sock,
            reader=FrameReader(parent_sock),
            generation=generation,
        )
        self.workers[shard_id] = handle
        self.spawn_counts[shard_id] = generation + 1
        return handle

    def handle(self, shard_id: int) -> WorkerHandle:
        try:
            return self.workers[shard_id]
        except KeyError:
            raise RuntimeError(
                f"shard {shard_id} has no live worker (not started?)"
            ) from None

    def alive(self, shard_id: int) -> bool:
        handle = self.workers.get(shard_id)
        return handle is not None and handle.process.is_alive()

    def _reap(self, handle: WorkerHandle, graceful: bool) -> None:
        if graceful and handle.process.is_alive():
            try:
                send_message(handle.sock, {"op": "shutdown"})
            except Exception:
                pass
            handle.process.join(timeout=1.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=5.0)
        try:
            handle.sock.close()
        except OSError:
            pass

    def respawn(self, shard_id: int) -> WorkerHandle:
        """Kill whatever is left of a shard's worker and fork a fresh one
        from the shard's durable checkpoint + WAL."""
        handle = self.workers.pop(shard_id, None)
        if handle is not None:
            self._reap(handle, graceful=False)
        return self.spawn(shard_id)

    def stop(self) -> None:
        """Shut every worker down (graceful first, SIGKILL after 1 s)."""
        for shard_id in list(self.workers):
            handle = self.workers.pop(shard_id)
            self._reap(handle, graceful=True)
