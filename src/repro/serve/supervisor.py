"""Builds, checkpoints, and keeps alive one worker process per shard.

``prepare()`` turns a :class:`~repro.serve.planner.ShardPlan` into on-disk
shard state: each shard's index is built from its local reduction, put
under write-ahead logging, and checkpointed (snapshot + truncated WAL)
into ``<root>/shard_<id>/``, alongside the shard's ``rid_map.npy``.  The
supervisor then *never ships a live index to a worker*: every spawn —
first boot and post-crash respawn alike — rebuilds from checkpoint + WAL
via :func:`repro.recovery.recover`, so the recovery path is exercised on
every process start, not just after disasters.

Workers are forked (one socketpair each); fork is required — the spawn
start method would re-import and re-pickle, and the platforms this
repository targets in CI all provide fork.  ``respawn()`` is the router's
rung for dead or hung workers: SIGKILL whatever is left, fork a fresh
process from the same durable state.

Fault specs (:class:`~repro.serve.faults.WorkerFaultSpec`) are handed to
the worker at spawn; a non-``persistent`` spec is consumed by the first
spawn, so a respawned worker comes back clean (recovery scenarios), while
a ``persistent`` spec re-arms every life (route-around scenarios).
"""

from __future__ import annotations

import multiprocessing
import socket
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Union

import numpy as np

from ..bench.spec import INDEX_SCHEMES
from ..recovery import checkpoint
from ..storage.mmap_store import MmapPageStore
from .faults import WorkerFaultSpec
from .planner import ShardPlan
from .protocol import FrameReader, send_message
from .worker import RID_MAP_NAME, SNAPSHOT_NAME, WAL_NAME, worker_main

__all__ = ["WorkerHandle", "Supervisor"]


@dataclass
class WorkerHandle:
    """The parent's view of one live worker: process + framed channel."""

    process: multiprocessing.process.BaseProcess
    sock: socket.socket
    reader: FrameReader
    generation: int


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX platforms
        raise RuntimeError(
            "the serving layer requires the fork start method"
        ) from exc


class Supervisor:
    """Owns shard state on disk and the worker process per shard."""

    def __init__(
        self,
        plan: ShardPlan,
        scheme: str,
        root: Union[str, Path],
        store: str = "memory",
    ) -> None:
        if scheme not in INDEX_SCHEMES:
            raise ValueError(
                f"unknown scheme {scheme!r}; expected one of "
                f"{sorted(INDEX_SCHEMES)}"
            )
        if store not in ("memory", "mmap"):
            raise ValueError(
                f"store must be 'memory' or 'mmap', got {store!r}"
            )
        self.plan = plan
        self.scheme = scheme
        self.root = Path(root)
        self.store = store
        self.workers: Dict[int, WorkerHandle] = {}
        self.spawn_counts: Dict[int, int] = {}
        self._fault_specs: Dict[int, WorkerFaultSpec] = {}
        self._ctx = _fork_context()
        self._prepared = False

    # -- shard state on disk --------------------------------------------

    def shard_dir(self, shard_id: int) -> Path:
        return self.root / f"shard_{shard_id}"

    @property
    def shard_ids(self):
        return [a.shard_id for a in self.plan.shards]

    def prepare(self) -> None:
        """Build + checkpoint every shard's index into its directory."""
        factory: Optional[Callable] = (
            MmapPageStore if self.store == "mmap" else None
        )
        build = INDEX_SCHEMES[self.scheme]
        for assignment in self.plan.shards:
            sdir = self.shard_dir(assignment.shard_id)
            sdir.mkdir(parents=True, exist_ok=True)
            index = build(assignment.reduced, store_factory=factory)
            index.enable_wal(sdir / WAL_NAME)
            checkpoint(index, sdir / SNAPSHOT_NAME)
            wal_store = index.disable_wal()
            wal_store.wal.close()
            # Release the build-time physical store (mmap file handles);
            # workers rehydrate their own from the snapshot.
            index.store.close()
            np.save(sdir / RID_MAP_NAME, assignment.rid_map)
        self._prepared = True

    # -- fault injection -------------------------------------------------

    def set_fault_spec(self, shard_id: int, spec: WorkerFaultSpec) -> None:
        """Arm a fault spec for ``shard_id``'s *next* spawn (call before
        :meth:`start`).  Non-persistent specs are consumed by that spawn."""
        self._fault_specs[shard_id] = spec

    # -- process lifecycle ----------------------------------------------

    def start(self) -> None:
        if not self._prepared:
            self.prepare()
        for shard_id in self.shard_ids:
            self.spawn(shard_id)

    def spawn(self, shard_id: int) -> WorkerHandle:
        if shard_id in self.workers:
            raise RuntimeError(
                f"shard {shard_id} already has a live worker; use respawn"
            )
        generation = self.spawn_counts.get(shard_id, 0)
        spec = self._fault_specs.get(shard_id)
        if spec is not None and generation > 0 and not spec.persistent:
            del self._fault_specs[shard_id]
            spec = None
        parent_sock, child_sock = socket.socketpair()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_sock, shard_id, str(self.shard_dir(shard_id)), spec),
            daemon=True,
        )
        process.start()
        # The parent's copy of the child end must close, or a dead worker
        # would never surface as EOF on the parent's socket.
        child_sock.close()
        handle = WorkerHandle(
            process=process,
            sock=parent_sock,
            reader=FrameReader(parent_sock),
            generation=generation,
        )
        self.workers[shard_id] = handle
        self.spawn_counts[shard_id] = generation + 1
        return handle

    def handle(self, shard_id: int) -> WorkerHandle:
        try:
            return self.workers[shard_id]
        except KeyError:
            raise RuntimeError(
                f"shard {shard_id} has no live worker (not started?)"
            ) from None

    def alive(self, shard_id: int) -> bool:
        handle = self.workers.get(shard_id)
        return handle is not None and handle.process.is_alive()

    def _reap(self, handle: WorkerHandle, graceful: bool) -> None:
        if graceful and handle.process.is_alive():
            try:
                send_message(handle.sock, {"op": "shutdown"})
            except Exception:
                pass
            handle.process.join(timeout=1.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=5.0)
        try:
            handle.sock.close()
        except OSError:
            pass

    def respawn(self, shard_id: int) -> WorkerHandle:
        """Kill whatever is left of a shard's worker and fork a fresh one
        from the shard's durable checkpoint + WAL."""
        handle = self.workers.pop(shard_id, None)
        if handle is not None:
            self._reap(handle, graceful=False)
        return self.spawn(shard_id)

    def stop(self) -> None:
        """Shut every worker down (graceful first, SIGKILL after 1 s)."""
        for shard_id in list(self.workers):
            handle = self.workers.pop(shard_id)
            self._reap(handle, graceful=True)
