"""Scatter-gather KNN router with a per-shard robustness ladder.

One :meth:`Router.knn` call scatters the (pre-validated) query batch to
every shard in its own thread, gathers per-shard top-K, and merges into
the exact global top-K by a deterministic ``(distance, rid)`` sort — the
same canonical order the benchmark fingerprints both sides with, so a
non-degraded scatter-gather answer hashes identically to the single-node
index.

Each shard request climbs a ladder, cheapest rung first:

1. **deadline** — every attempt has ``deadline_s`` to produce a reply;
2. **hedge** — after a latency threshold (fixed ``hedge_after_s`` or an
   observed quantile of recent shard latencies) a duplicate request is
   sent on the same channel; first reply wins, the straggler is drained
   as a stale response.  Covers dropped replies without waiting out the
   full deadline;
3. **retry with backoff** — up to ``max_attempts`` fresh attempts, each
   with a new request id, backing off exponentially.  Garbled frames are
   retried on the same (still-aligned) connection;
4. **respawn** — an EOF means the worker died: the supervisor forks a
   fresh one from checkpoint + WAL before the next attempt.  A second
   consecutive timeout means the worker is hung, and is respawned too;
5. **route around** — a shard that exhausts its attempts (or whose
   circuit breaker is open) is excluded from the merge; the result says
   so (``partial=True`` + ``missing_shards``) rather than blocking or
   silently shrinking the answer.

A per-shard :class:`~repro.serve.breaker.CircuitBreaker` is fed by both
request failures and :meth:`check_health` heartbeats; while OPEN, the
shard is skipped instantly instead of costing every request a deadline.
Admission control bounds concurrent :meth:`knn` calls — beyond
``max_inflight`` the call is shed with a typed :class:`OverloadError`
(load must fail fast at the door, not queue without bound).

Invalid queries never leave the router: rows with NaN/Inf (or zero-norm
under cosine) are masked out before the scatter, reported once in
:attr:`RouterResult.invalid_queries`, and re-expanded as ``-1``/NaN rows —
identical semantics to single-node ``knn_batch``, and no way for a bad
query to crash a shard or trip its breaker.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..index.base import InvalidQueryError, QueryStats
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer, ensure_tracer
from .breaker import BreakerState, CircuitBreaker
from .protocol import (
    ConnectionLostError,
    GarbledFrameError,
    ServeError,
)
from .protocol import send_message
from .supervisor import Supervisor

__all__ = [
    "OverloadError",
    "ShardUnavailableError",
    "NoShardsAvailableError",
    "RollingSwapReport",
    "RouterConfig",
    "RouterResult",
    "Router",
    "merge_topk",
    "canonicalize_rows",
]


class OverloadError(ServeError):
    """Admission control shed this request: ``max_inflight`` concurrent
    requests are already running.  Back off and retry later."""


class ShardUnavailableError(ServeError):
    """One shard exhausted its ladder (or its breaker is open).  Internal
    to the scatter — the router routes around it and reports a partial
    result instead of surfacing this."""


class NoShardsAvailableError(ServeError):
    """Every shard is unavailable; there is no answer to return."""


class _WorkerError(ServeError):
    """A worker replied with a typed non-query error."""


@dataclass(frozen=True)
class RouterConfig:
    """Tunables for the ladder; defaults suit tests and local benches."""

    #: Per-attempt reply deadline (seconds).
    deadline_s: float = 5.0
    #: Total attempts per shard per request (1 = no retry rung).
    max_attempts: int = 3
    #: Backoff before the 2nd attempt; doubles each further attempt.
    backoff_s: float = 0.02
    #: Send a hedged duplicate after this many seconds without a reply;
    #: ``None`` disables fixed-delay hedging.
    hedge_after_s: Optional[float] = None
    #: When set, hedge after this quantile of the shard's recent observed
    #: latencies (once >= 20 samples exist); overrides ``hedge_after_s``
    #: when enough history is available.
    hedge_quantile: Optional[float] = None
    #: Consecutive failures that trip a shard's breaker OPEN.
    breaker_failure_threshold: int = 3
    #: Seconds an OPEN breaker waits before admitting a half-open probe.
    breaker_cooldown_s: float = 5.0
    #: Concurrent ``knn`` calls admitted; further calls shed.
    max_inflight: int = 32
    #: Reply deadline for heartbeat pings.
    health_timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.hedge_quantile is not None and not (
            0.0 < self.hedge_quantile < 1.0
        ):
            raise ValueError(
                f"hedge_quantile must be in (0, 1), got {self.hedge_quantile}"
            )


@dataclass(frozen=True)
class RouterResult:
    """The merged answer of one scattered batch.

    Mirrors :class:`~repro.index.base.BatchKNNResult` semantics — same
    invalid-row conventions, per-query stats summed across the shards
    that answered — plus the degrade contract: ``partial`` is True iff
    some shard could not answer, and ``missing_shards`` names them.
    """

    ids: np.ndarray
    distances: np.ndarray
    stats: Tuple[QueryStats, ...]
    invalid_queries: Tuple[int, ...]
    partial: bool
    missing_shards: Tuple[int, ...]
    shards_answered: int
    wall_seconds: float

    @property
    def n_queries(self) -> int:
        return int(self.ids.shape[0])

    @property
    def k(self) -> int:
        return int(self.ids.shape[1])


@dataclass(frozen=True)
class RollingSwapReport:
    """What one :meth:`Router.rolling_swap` did."""

    shards_swapped: Tuple[int, ...]
    wall_seconds: float


def canonicalize_rows(
    ids: np.ndarray, distances: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Re-order each row by ``(distance, id)`` — the canonical answer
    order both the router's merge and the single-node comparison are
    fingerprinted under, so distance ties cannot produce spurious
    mismatches.  NaN distances (invalid rows) sort last, and their ids
    are all ``-1``, so invalid rows stay fixed points."""
    order = np.lexsort((ids, distances), axis=-1)
    return (
        np.take_along_axis(ids, order, axis=1),
        np.take_along_axis(distances, order, axis=1),
    )


def merge_topk(
    shard_ids: Sequence[np.ndarray],
    shard_distances: Sequence[np.ndarray],
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact global top-K from per-shard exact top-K.

    Shards hold disjoint rid sets, so the concatenated candidate pool
    contains the global top-K whenever every shard contributed
    ``min(k, shard_size)`` rows; the ``(distance, rid)`` sort then yields
    a deterministic global order regardless of shard count or arrival
    order.
    """
    all_ids = np.concatenate(list(shard_ids), axis=1)
    all_distances = np.concatenate(list(shard_distances), axis=1)
    ids, distances = canonicalize_rows(all_ids, all_distances)
    k_out = min(k, ids.shape[1])
    return (
        np.ascontiguousarray(ids[:, :k_out]),
        np.ascontiguousarray(distances[:, :k_out]),
    )


_ZERO_STATS = QueryStats(0, 0, 0, 0, 0.0)


def _sum_stats(
    per_shard: Sequence[Tuple[QueryStats, ...]], n_queries: int
) -> Tuple[QueryStats, ...]:
    merged: List[QueryStats] = []
    for q in range(n_queries):
        reads = comps = flops = keys = 0
        cpu = 0.0
        for stats in per_shard:
            s = stats[q]
            reads += s.page_reads
            comps += s.distance_computations
            flops += s.distance_flops
            keys += s.key_comparisons
            cpu += s.cpu_seconds
        merged.append(QueryStats(reads, comps, flops, keys, cpu))
    return tuple(merged)


class _ShardChannel:
    """Router-side per-shard state: lock, breaker, latency history."""

    def __init__(self, shard_id: int, router: "Router") -> None:
        self.shard_id = shard_id
        self.lock = threading.Lock()
        self.latencies: deque = deque(maxlen=256)

        def on_transition(old: BreakerState, new: BreakerState) -> None:
            router.metrics.counter(f"serve.breaker.{new.value}").inc()

        config = router.config
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_failure_threshold,
            cooldown_s=config.breaker_cooldown_s,
            clock=router._clock,
            on_transition=on_transition,
        )

    def hedge_delay(self, config: RouterConfig) -> Optional[float]:
        if config.hedge_quantile is not None and len(self.latencies) >= 20:
            ordered = sorted(self.latencies)
            position = int(config.hedge_quantile * (len(ordered) - 1))
            return ordered[position]
        return config.hedge_after_s


class Router:
    """Scatter-gather front end over a :class:`Supervisor`'s workers."""

    def __init__(
        self,
        supervisor: Supervisor,
        config: Optional[RouterConfig] = None,
        clock=time.monotonic,
    ) -> None:
        self.supervisor = supervisor
        self.config = config if config is not None else RouterConfig()
        self.metrics = MetricsRegistry()
        self._clock = clock
        self._channels: Dict[int, _ShardChannel] = {
            sid: _ShardChannel(sid, self) for sid in supervisor.shard_ids
        }
        self._req_seq = itertools.count(1)
        self._inflight = threading.Semaphore(self.config.max_inflight)
        self._heartbeat_stop: Optional[threading.Event] = None
        self._heartbeat_thread: Optional[threading.Thread] = None
        #: Shards mid-swap: excluded from the scatter (reported missing /
        #: partial via the normal degrade contract) instead of queueing
        #: requests behind the respawn.  Mutated only by rolling_swap.
        self._draining: set = set()

    # -- shard-level request ladder -------------------------------------

    def _read_reply(
        self,
        channel: _ShardChannel,
        handle,
        request: dict,
        deadline_s: float,
        hedge_delay: Optional[float],
    ) -> dict:
        """Send one request (+ optional hedge) and read its matching
        reply.  Raises ``socket.timeout`` / ``GarbledFrameError`` /
        ``ConnectionLostError``."""
        send_message(handle.sock, request)
        copies = 1
        start = self._clock()
        hard_deadline = start + deadline_s
        hedge_at = (
            start + hedge_delay if hedge_delay is not None else None
        )
        while True:
            now = self._clock()
            if now >= hard_deadline:
                raise socket.timeout(
                    f"shard {channel.shard_id} missed its "
                    f"{deadline_s:.3f}s deadline"
                )
            wait = hard_deadline - now
            if copies == 1 and hedge_at is not None:
                if now >= hedge_at:
                    duplicate = dict(request)
                    duplicate["dup"] = True
                    send_message(handle.sock, duplicate)
                    copies = 2
                    self.metrics.counter("serve.hedges").inc()
                    continue
                wait = min(wait, hedge_at - now)
            try:
                reply = handle.reader.read_message(timeout=wait)
            except socket.timeout:
                continue  # the loop decides: hedge now, or deadline out
            if reply.get("req_id") != request["req_id"]:
                # Straggler from a hedged pair or an abandoned attempt.
                self.metrics.counter("serve.stale_responses").inc()
                continue
            if copies == 2:
                won = bool(reply.get("dup"))
                self.metrics.counter(
                    "serve.hedges_won" if won else "serve.hedges_wasted"
                ).inc()
            return reply

    def _respawn(self, shard_id: int) -> None:
        self.metrics.counter("serve.respawns").inc()
        self.supervisor.respawn(shard_id)

    def _shard_call(
        self, shard_id: int, request_base: dict
    ) -> dict:
        """Run the full ladder for one shard; returns the worker's reply
        or raises :class:`ShardUnavailableError` (route-around) /
        :class:`InvalidQueryError` (caller bug, shard healthy)."""
        channel = self._channels[shard_id]
        config = self.config
        with channel.lock:
            if not channel.breaker.allow_request():
                self.metrics.counter("serve.breaker_rejected").inc()
                raise ShardUnavailableError(
                    f"shard {shard_id} breaker is "
                    f"{channel.breaker.state.value}"
                )
            backoff = config.backoff_s
            consecutive_timeouts = 0
            last_error: Optional[BaseException] = None
            for attempt in range(1, config.max_attempts + 1):
                if attempt > 1:
                    self.metrics.counter("serve.retries").inc()
                    if backoff > 0:
                        time.sleep(backoff)
                    backoff *= 2
                request = dict(request_base)
                request["req_id"] = next(self._req_seq)
                handle = self.supervisor.handle(shard_id)
                started = self._clock()
                try:
                    reply = self._read_reply(
                        channel,
                        handle,
                        request,
                        config.deadline_s,
                        channel.hedge_delay(config),
                    )
                    if reply.get("op") == "error":
                        if reply.get("error_type") == "InvalidQueryError":
                            # The shard is healthy; the request was bad.
                            channel.breaker.record_success()
                            raise InvalidQueryError(
                                reply.get("message", "invalid query")
                            )
                        raise _WorkerError(
                            f"shard {shard_id} error "
                            f"[{reply.get('error_type')}]: "
                            f"{reply.get('message')}"
                        )
                    channel.latencies.append(self._clock() - started)
                    channel.breaker.record_success()
                    return reply
                except InvalidQueryError:
                    raise
                except ConnectionLostError as exc:
                    last_error = exc
                    consecutive_timeouts = 0
                    self.metrics.counter("serve.connection_lost").inc()
                    channel.breaker.record_failure()
                    # The worker is gone; only a fresh process can answer.
                    self._respawn(shard_id)
                except socket.timeout as exc:
                    last_error = exc
                    consecutive_timeouts += 1
                    self.metrics.counter("serve.timeouts").inc()
                    channel.breaker.record_failure()
                    if not self.supervisor.alive(shard_id):
                        self._respawn(shard_id)
                        consecutive_timeouts = 0
                    elif consecutive_timeouts >= 2:
                        # Alive but unresponsive twice: treat as hung.
                        self._respawn(shard_id)
                        consecutive_timeouts = 0
                except GarbledFrameError as exc:
                    last_error = exc
                    consecutive_timeouts = 0
                    self.metrics.counter("serve.garbled_frames").inc()
                    channel.breaker.record_failure()
                    # Stream is still aligned; a plain retry suffices.
                except _WorkerError as exc:
                    last_error = exc
                    consecutive_timeouts = 0
                    self.metrics.counter("serve.worker_errors").inc()
                    channel.breaker.record_failure()
            raise ShardUnavailableError(
                f"shard {shard_id} exhausted {config.max_attempts} "
                f"attempts: {last_error}"
            )

    # -- batch entry point ----------------------------------------------

    def _validate(
        self, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Mirror single-node ``knn_batch`` validation: structural
        problems raise, per-row problems are masked out."""
        queries = np.ascontiguousarray(
            np.atleast_2d(np.asarray(queries, dtype=np.float64))
        )
        if queries.ndim != 2:
            raise ValueError(
                f"queries must be (Q, d), got shape {queries.shape}"
            )
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        expected = self.supervisor.plan.dimensionality
        if queries.shape[1] != expected:
            raise InvalidQueryError(
                f"queries have {queries.shape[1]} dimensions; the sharded "
                f"index was built over {expected}-dimensional data"
            )
        valid = np.isfinite(queries).all(axis=1)
        if self.supervisor.plan.metric == "cosine":
            valid &= np.linalg.norm(queries, axis=1) > 0.0
        return queries, valid

    def knn(
        self,
        queries: np.ndarray,
        k: int,
        tracer: Optional[Tracer] = None,
    ) -> RouterResult:
        """Scatter a query batch to every shard and merge exactly.

        Raises :class:`OverloadError` when shed by admission control and
        :class:`NoShardsAvailableError` when no shard at all answered;
        lesser degradation comes back as ``partial=True``.
        """
        if not self._inflight.acquire(blocking=False):
            self.metrics.counter("serve.shed").inc()
            raise OverloadError(
                f"router at max_inflight={self.config.max_inflight}; "
                "request shed"
            )
        try:
            return self._knn_admitted(queries, k, ensure_tracer(tracer))
        finally:
            self._inflight.release()

    def _knn_admitted(
        self, queries: np.ndarray, k: int, tracer: Tracer
    ) -> RouterResult:
        start = time.perf_counter()
        self.metrics.counter("serve.requests").inc()
        queries, valid = self._validate(queries, k)
        invalid_rows = tuple(np.flatnonzero(~valid).tolist())
        if invalid_rows:
            self.metrics.counter("serve.invalid_queries").inc(
                len(invalid_rows)
            )
        valid_queries = queries if not invalid_rows else queries[valid]
        shard_ids = self.supervisor.shard_ids
        # Snapshot the draining set once per request: shards mid-swap are
        # routed around (missing/partial), exactly like a tripped breaker.
        draining = tuple(
            sid for sid in shard_ids if sid in self._draining
        )
        if draining:
            self.metrics.counter("serve.draining_skipped").inc(
                len(draining)
            )
        active_ids = [sid for sid in shard_ids if sid not in draining]
        request_base = {
            "op": "knn",
            "queries": valid_queries,
            "k": k,
            "trace_id": tracer.trace_id if tracer.enabled else None,
        }

        replies: Dict[int, dict] = {}
        failures: Dict[int, BaseException] = {}

        def scatter_one(sid: int) -> None:
            try:
                replies[sid] = self._shard_call(sid, request_base)
            except BaseException as exc:  # collected, raised on main thread
                failures[sid] = exc

        with tracer.span(
            "serve.scatter",
            n_shards=len(active_ids),
            n_queries=int(queries.shape[0]),
            k=k,
        ) as scatter_span:
            if valid_queries.shape[0] == 0 or not active_ids:
                replies.clear()
            elif len(active_ids) == 1:
                scatter_one(active_ids[0])
            else:
                threads = [
                    threading.Thread(
                        target=scatter_one, args=(sid,), daemon=True
                    )
                    for sid in active_ids
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()

            for sid, exc in failures.items():
                if isinstance(exc, InvalidQueryError):
                    raise exc
                if not isinstance(exc, ShardUnavailableError):
                    raise exc

            if tracer.enabled:
                for sid, reply in sorted(replies.items()):
                    tracer.adopt_spans(
                        reply.get("spans", ()),
                        parent=scatter_span,
                        worker=sid,
                    )
                    tracer.metrics.merge_records(
                        list(reply.get("metrics", ()))
                    )

        missing = tuple(
            sid
            for sid in shard_ids
            if sid in draining
            or (
                sid in failures
                and isinstance(failures[sid], ShardUnavailableError)
            )
        )
        if valid_queries.shape[0] and not replies:
            self.metrics.counter("serve.partial_results").inc()
            raise NoShardsAvailableError(
                f"no shard answered (missing: {list(missing)})"
            )
        partial = bool(missing)
        if partial:
            self.metrics.counter("serve.partial_results").inc()

        n_queries = int(queries.shape[0])
        if valid_queries.shape[0] == 0:
            merged_ids = np.empty((0, 0), dtype=np.int64)
            merged_distances = np.empty((0, 0), dtype=np.float64)
            merged_stats: Tuple[QueryStats, ...] = ()
        else:
            ordered = [replies[sid] for sid in sorted(replies)]
            merged_ids, merged_distances = merge_topk(
                [r["ids"] for r in ordered],
                [r["distances"] for r in ordered],
                k,
            )
            merged_stats = _sum_stats(
                [r["stats"] for r in ordered], valid_queries.shape[0]
            )

        if invalid_rows:
            k_cols = merged_ids.shape[1]
            full_ids = np.full((n_queries, k_cols), -1, dtype=np.int64)
            full_distances = np.full(
                (n_queries, k_cols), np.nan, dtype=np.float64
            )
            full_ids[valid] = merged_ids
            full_distances[valid] = merged_distances
            stats_list: List[QueryStats] = [_ZERO_STATS] * n_queries
            for row, s in zip(
                np.flatnonzero(valid).tolist(), merged_stats
            ):
                stats_list[row] = s
            merged_ids, merged_distances = full_ids, full_distances
            merged_stats = tuple(stats_list)

        return RouterResult(
            ids=merged_ids,
            distances=merged_distances,
            stats=merged_stats,
            invalid_queries=invalid_rows,
            partial=partial,
            missing_shards=missing,
            shards_answered=len(replies),
            wall_seconds=time.perf_counter() - start,
        )

    # -- generational swap ------------------------------------------------

    def rolling_swap(
        self, new_plan, new_root
    ) -> "RollingSwapReport":
        """Swap the cluster to a new index generation one shard at a time,
        without ever refusing a request outright.

        Protocol per shard: mark it *draining* (new scatters route around
        it and report ``partial``), acquire its channel lock — every shard
        request holds that lock for its full ladder, so acquiring it IS
        the drain barrier — then point the supervisor at the new
        generation's directory and respawn the worker from the new
        snapshot + WAL.  Undrain, move on.  At most one shard is ever
        down, which is exactly the degrade the ladder already absorbs; a
        mid-roll answer may mix old- and new-generation shards (stale-read
        window, see DESIGN.md §15) but is complete and correctly merged
        under either generation's rid spaces because global rids are
        stable across generations.

        The new generation's state is fully built (``prepare_generation``)
        before the first worker dies, so a failure while building leaves
        the cluster untouched.
        """
        start = time.perf_counter()
        prepared = self.supervisor.prepare_generation(new_plan, new_root)
        swapped: List[int] = []
        try:
            for sid in self.supervisor.shard_ids:
                channel = self._channels[sid]
                self._draining.add(sid)
                try:
                    with channel.lock:  # drained: no request in flight
                        self.supervisor.swap_shard(sid, prepared[sid])
                finally:
                    self._draining.discard(sid)
                channel.breaker.record_success()
                self.metrics.counter("serve.generation_swaps").inc()
                swapped.append(sid)
        finally:
            self._draining.clear()
        self.supervisor.adopt_plan(new_plan)
        return RollingSwapReport(
            shards_swapped=tuple(swapped),
            wall_seconds=time.perf_counter() - start,
        )

    # -- health ----------------------------------------------------------

    def check_health(self) -> Dict[int, dict]:
        """Ping every shard once, feeding each breaker; returns a
        per-shard health report (also the demo's status view)."""
        report: Dict[int, dict] = {}
        for sid in self.supervisor.shard_ids:
            channel = self._channels[sid]
            entry = {
                "shard": sid,
                "breaker": channel.breaker.state.value,
                "consecutive_failures": (
                    channel.breaker.consecutive_failures
                ),
                "spawns": self.supervisor.spawn_counts.get(sid, 0),
                "alive": self.supervisor.alive(sid),
                "responsive": False,
            }
            with channel.lock:
                if not channel.breaker.allow_request():
                    report[sid] = entry
                    continue
                try:
                    handle = self.supervisor.handle(sid)
                    request = {
                        "op": "ping",
                        "req_id": next(self._req_seq),
                    }
                    send_message(handle.sock, request)
                    while True:
                        reply = handle.reader.read_message(
                            timeout=self.config.health_timeout_s
                        )
                        if reply.get("req_id") == request["req_id"]:
                            break
                        self.metrics.counter(
                            "serve.stale_responses"
                        ).inc()
                    channel.breaker.record_success()
                    entry.update(
                        responsive=True,
                        pid=reply.get("pid"),
                        live_count=reply.get("live_count"),
                        breaker=channel.breaker.state.value,
                    )
                except (
                    socket.timeout,
                    GarbledFrameError,
                    ConnectionLostError,
                    RuntimeError,
                ):
                    self.metrics.counter("serve.heartbeat_failures").inc()
                    channel.breaker.record_failure()
                    entry["breaker"] = channel.breaker.state.value
                    if not self.supervisor.alive(sid):
                        self._respawn(sid)
            report[sid] = entry
        return report

    def start_heartbeats(self, interval_s: float = 1.0) -> None:
        """Run :meth:`check_health` on a background daemon thread."""
        if self._heartbeat_thread is not None:
            return
        stop = threading.Event()

        def loop() -> None:
            while not stop.wait(interval_s):
                try:
                    self.check_health()
                except Exception:
                    # Heartbeats must never take the router down.
                    self.metrics.counter(
                        "serve.heartbeat_errors"
                    ).inc()

        self._heartbeat_stop = stop
        self._heartbeat_thread = threading.Thread(
            target=loop, daemon=True
        )
        self._heartbeat_thread.start()

    def close(self) -> None:
        """Stop heartbeats and shut down every worker."""
        if self._heartbeat_stop is not None:
            self._heartbeat_stop.set()
            self._heartbeat_thread.join(timeout=5.0)
            self._heartbeat_stop = None
            self._heartbeat_thread = None
        self.supervisor.stop()

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
