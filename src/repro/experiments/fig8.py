"""Figure 8 — query precision vs. number of retained dimensions.

8a uses the small synthetic dataset, 8b the (simulated) Corel color
histograms.  Protocol (see ``retarget_dimensionality``): each method
discovers its clusters once with its own rules, then the representation
width is swept — precision at width ``w`` measures how much distance
information that method's subspaces keep with ``w`` components.

Paper claims to reproduce:

* precision increases with retained dimensionality for every method;
* MMDR is far ahead throughout; on the synthetic data LDR tops out around
  60% at 20 dims and GDR under ~25%;
* on the color histograms all methods do worse (weak correlation, many
  outliers), MMDR remains best and is least affected.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..eval.precision import exact_knn, precision_at_k, reduced_knn
from ..reduction.base import retarget_dimensionality
from .common import (
    MASTER_SEED,
    colorhist_dataset,
    default_reducers,
    make_workload,
    synthetic_small,
)
from .fig7 import PrecisionSweep

__all__ = ["FIG8_DIMS", "run_fig8a", "run_fig8b"]

#: Retained-dimensionality sweep (MaxDim = 20 in the paper's Figure 8).
FIG8_DIMS: Sequence[int] = (5, 10, 15, 20)


def _dimension_sweep(
    data: np.ndarray, dims: Sequence[int], seed: int
) -> PrecisionSweep:
    workload = make_workload(data, seed_offset=seed % 991)
    truth = exact_knn(data, workload.queries, workload.k)
    series: Dict[str, List[float]] = {}
    for name, reducer in default_reducers().items():
        base = reducer.reduce(data, np.random.default_rng(seed))
        precisions: List[float] = []
        for dim in dims:
            red = retarget_dimensionality(data, base, int(dim))
            approx = reduced_knn(red, workload.queries, workload.k)
            precisions.append(precision_at_k(truth, approx))
        series[name] = precisions
    return PrecisionSweep(
        x_label="retained_dims",
        x_values=[float(d) for d in dims],
        series=series,
    )


def run_fig8a(dims: Sequence[int] = FIG8_DIMS) -> PrecisionSweep:
    """Precision vs. retained dims, small synthetic dataset."""
    return _dimension_sweep(synthetic_small(), dims, MASTER_SEED + 300)


def run_fig8b(dims: Sequence[int] = FIG8_DIMS) -> PrecisionSweep:
    """Precision vs. retained dims, simulated Corel color histograms."""
    return _dimension_sweep(colorhist_dataset(), dims, MASTER_SEED + 301)
