"""Figures 9 and 10 — per-query I/O and CPU cost of the indexing schemes.

One sweep produces both figures: at each retained dimensionality we build
iMMDR (extended iDistance on the MMDR reduction), iLDR (extended iDistance
on the LDR reduction), gLDR (one Hybrid tree per LDR cluster) and a
sequential scan, answer the 100-query 10-NN workload cold-cache, and record
page reads (Figure 9) plus CPU time and the deterministic dimension-weighted
work proxy (Figure 10).

Paper claims to reproduce:

* I/O grows with dimensionality for every scheme; iMMDR < iLDR ("a more
  effective reduction leads to overall better query efficiency" — our iMMDR
  also carries MMDR's outliers, so the inequality is about the totals);
  gLDR is the worst index and approaches/crosses the sequential scan around
  20 dimensions.
* CPU: the extended iDistance schemes sit well below gLDR (1-d key
  comparisons vs d-dimensional L-norms in the Hybrid tree's internal
  nodes); the gap widens with dimensionality, reaching ~an order of
  magnitude at 30 dims in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence

import numpy as np

from ..eval.harness import BatchCost, run_query_batch
from ..index.global_ldr import GlobalLDRIndex
from ..index.idistance import ExtendedIDistance
from ..index.seqscan import SequentialScan
from ..reduction.base import retarget_dimensionality
from .common import (
    colorhist_dataset,
    make_workload,
    reduce_with,
    synthetic_small,
)

__all__ = ["CostSweep", "FIG9_DIMS", "run_cost_sweep_synthetic",
           "run_cost_sweep_colorhist"]

#: Subspace-dimensionality sweep of Figures 9/10.
FIG9_DIMS: Sequence[int] = (10, 15, 20, 25, 30)


@dataclass(frozen=True)
class CostSweep:
    """Cost series for one dataset: x = dims, per-scheme BatchCost lists."""

    x_label: str
    x_values: List[int]
    schemes: Dict[str, List[BatchCost]]

    def series(self, metric: str) -> Dict[str, List[float]]:
        """Extract one metric ('mean_page_reads', 'mean_cpu_seconds',
        'mean_cpu_work') as plain float series per scheme."""
        return {
            name: [getattr(cost, metric) for cost in costs]
            for name, costs in self.schemes.items()
        }


def _cost_sweep(data: np.ndarray, dims: Sequence[int]) -> CostSweep:
    workload = make_workload(data)
    reduced_mmdr = reduce_with("MMDR", data)
    reduced_ldr = reduce_with("LDR", data)
    schemes: Dict[str, List[BatchCost]] = {
        "iMMDR": [],
        "iLDR": [],
        "gLDR": [],
        "SeqScan": [],
    }
    for dim in dims:
        at_dim_mmdr = retarget_dimensionality(data, reduced_mmdr, int(dim))
        at_dim_ldr = retarget_dimensionality(data, reduced_ldr, int(dim))
        indexes = {
            "iMMDR": ExtendedIDistance(at_dim_mmdr),
            "iLDR": ExtendedIDistance(at_dim_ldr),
            "gLDR": GlobalLDRIndex(at_dim_ldr),
            "SeqScan": SequentialScan(at_dim_ldr),
        }
        for name, index in indexes.items():
            schemes[name].append(run_query_batch(index, workload))
    return CostSweep(
        x_label="retained_dims",
        x_values=[int(d) for d in dims],
        schemes=schemes,
    )


@lru_cache(maxsize=None)
def run_cost_sweep_synthetic(dims: Sequence[int] = FIG9_DIMS) -> CostSweep:
    """Figures 9a / 10a: the small synthetic dataset."""
    return _cost_sweep(synthetic_small(), tuple(dims))


@lru_cache(maxsize=None)
def run_cost_sweep_colorhist(dims: Sequence[int] = FIG9_DIMS) -> CostSweep:
    """Figures 9b / 10b: the simulated Corel color histograms."""
    return _cost_sweep(colorhist_dataset(), tuple(dims))
