"""Shared machinery for the per-figure experiment modules.

Scale control
-------------
The paper's runs use 100 000-1 000 000 points; a CI-friendly suite cannot.
``REPRO_BENCH_SCALE`` selects the operating point:

* ``ci`` (default) — sizes divided by ~5-20; every claimed *shape* (method
  ordering, rough factors, crossovers) is preserved, the absolute numbers
  shrink.
* ``full`` — the paper's sizes (minutes to hours on a laptop).

Datasets and reductions are memoized per process so that Figure 8, 9 and 10
benchmarks share one MMDR/LDR fit instead of refitting per panel.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

from ..core.config import MMDRConfig
from ..data.colorhist import ColorHistogramSpec, generate_color_histograms
from ..data.synthetic import (
    ClusterSpec,
    SyntheticSpec,
    generate_correlated_clusters,
)
from ..data.workload import QueryWorkload, sample_queries
from ..reduction.base import ReducedDataset
from ..reduction.gdr import GDRReducer
from ..reduction.ldr import LDRReducer
from ..reduction.mmdr_adapter import MMDRReducer

__all__ = [
    "BenchScale",
    "bench_scale",
    "MASTER_SEED",
    "N_QUERIES",
    "K_NEIGHBORS",
    "synthetic_small",
    "colorhist_dataset",
    "make_workload",
    "reduce_with",
    "default_reducers",
]

#: One seed to rule the whole evaluation (per-figure offsets derive from it).
MASTER_SEED = 20030305
#: The paper uses 100 queries and 10-NN throughout §6.
N_QUERIES = 100
K_NEIGHBORS = 10


@dataclass(frozen=True)
class BenchScale:
    """Concrete sizes for one operating point."""

    name: str
    synthetic_points: int  # paper: 100 000 (small synthetic dataset)
    colorhist_images: int  # paper: 70 000
    scal_points_max: int  # paper: 1 000 000 (Figure 11 sweeps up to this)
    scal_dims_max: int  # paper: 200


_SCALES: Dict[str, BenchScale] = {
    "ci": BenchScale(
        name="ci",
        synthetic_points=20_000,
        colorhist_images=14_000,
        scal_points_max=50_000,
        scal_dims_max=100,
    ),
    "full": BenchScale(
        name="full",
        synthetic_points=100_000,
        colorhist_images=70_000,
        scal_points_max=1_000_000,
        scal_dims_max=200,
    ),
}


def bench_scale() -> BenchScale:
    """The active scale, from ``REPRO_BENCH_SCALE`` (``ci`` or ``full``)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "ci").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


#: Per-cluster intrinsic dimensionalities of the "small synthetic dataset".
#: Mixed on purpose ("each subspace has different size, orientation and
#: ellipticity").
SYNTHETIC_INTRINSIC_DIMS = (8, 12, 10, 14, 12, 16, 14, 18, 16, 20)
#: Cluster-size weights ("different size"): unequal sizes are a regime where
#: Euclidean k-means systematically merges small clusters and splits big
#: ones — one half of the LDR failure mode of Figure 5.
SYNTHETIC_SIZE_WEIGHTS = (8, 6, 5, 4, 3.5, 3, 2.5, 2, 1.5, 1.5)


def overlapping_cluster_specs(
    total: int,
    intrinsic_dims: tuple,
    size_weights: tuple,
    rng: np.random.Generator,
    dimensionality: int = 64,
    variance_lo: float = 0.15,
    variance_hi: float = 0.19,
    variance_e: float = 0.012,
    jitter: float = 0.01,
) -> list:
    """Cluster specs arranged as co-located *pairs* with different
    orientations — the Figure 1/5 regime where ellipsoids intersect.

    Euclidean clustering sees each pair as one blob and slices it along the
    wrong boundary; Mahalanobis-based discovery separates (or coherently
    covers) the pair.  Locations are scattered; within a location the two
    clusters' centers differ only by ``jitter``.
    """
    clustered = total - int(total * 0.005)  # leave room for xi noise points
    weights = np.asarray(size_weights, dtype=np.float64)
    sizes = np.maximum(
        1, (clustered * weights / weights.sum()).astype(int)
    )
    sizes[0] += clustered - int(sizes.sum())
    clusters = []
    location = None
    for idx, (size, s_dim) in enumerate(
        zip(sizes.tolist(), intrinsic_dims)
    ):
        if idx % 2 == 0 or location is None:
            location = rng.normal(0.0, 0.25, size=dimensionality)
        offset = location + rng.normal(0.0, jitter, size=dimensionality)
        # variance_r ~ 0.17 gives sigma ~ 0.05 per signal dimension: strong
        # enough that a thin slice of a cluster fails MaxMPE decisively, so
        # the recursion cannot accept marginal fragments.
        clusters.append(
            ClusterSpec(
                size=size,
                s_dim=s_dim,
                s_r_dim=int(
                    rng.integers(0, dimensionality - s_dim + 1)
                ),
                variance_r=float(rng.uniform(variance_lo, variance_hi)),
                variance_e=variance_e,
                lb=0.0,
                center_offset=tuple(float(v) for v in offset),
            )
        )
    return clusters


@lru_cache(maxsize=None)
def synthetic_small(n_points: int = 0) -> np.ndarray:
    """The paper's "small synthetic dataset": N x 64-d correlated clusters
    of different intrinsic dimensionality, size and orientation, arranged
    as intersecting pairs (see :func:`overlapping_cluster_specs`).

    ``n_points=0`` means "use the active scale".
    """
    scale = bench_scale()
    total = n_points or scale.synthetic_points
    rng = np.random.default_rng(MASTER_SEED)
    clusters = overlapping_cluster_specs(
        total, SYNTHETIC_INTRINSIC_DIMS, SYNTHETIC_SIZE_WEIGHTS, rng
    )
    spec = SyntheticSpec(
        n_points=total,
        dimensionality=64,
        n_clusters=len(clusters),
        noise_fraction=0.005,
        clusters=tuple(clusters),
    )
    return generate_correlated_clusters(spec, rng).points


@lru_cache(maxsize=None)
def colorhist_dataset() -> np.ndarray:
    """The simulated Corel color-histogram dataset (see DESIGN.md)."""
    scale = bench_scale()
    spec = ColorHistogramSpec(n_images=scale.colorhist_images)
    rng = np.random.default_rng(MASTER_SEED + 1)
    return generate_color_histograms(spec, rng)


def make_workload(
    data: np.ndarray, seed_offset: int = 0
) -> QueryWorkload:
    """The paper's standard workload: 100 data-distributed 10-NN queries."""
    rng = np.random.default_rng(MASTER_SEED + 1000 + int(seed_offset))
    return sample_queries(data, N_QUERIES, rng, k=K_NEIGHBORS)


def default_reducers() -> Dict[str, object]:
    """Fresh instances of the three reducers under comparison."""
    return {
        "MMDR": MMDRReducer(MMDRConfig()),
        "LDR": LDRReducer(),
        "GDR": GDRReducer(),
    }


_REDUCTION_CACHE: Dict[Tuple[int, str, object], ReducedDataset] = {}


def reduce_with(
    method: str, data: np.ndarray, cache_tag: object = None
) -> ReducedDataset:
    """Fit (or fetch the memoized) reduction of ``data`` by ``method``.

    ``cache_tag`` distinguishes datasets that share an ``id`` lifetime (e.g.
    parameter sweeps that rebuild arrays); passing the sweep parameters is
    enough.
    """
    key = (id(data), method, cache_tag)
    if key not in _REDUCTION_CACHE:
        reducer = default_reducers()[method]
        rng = np.random.default_rng(MASTER_SEED + 7)
        _REDUCTION_CACHE[key] = reducer.reduce(data, rng)
    return _REDUCTION_CACHE[key]
