"""Per-figure experiment definitions (§6 of the paper).

Each module owns one figure's protocol — dataset, sweep, methods — and the
benchmark harnesses in ``benchmarks/`` call into them and assert the
paper's claimed shapes.  ``REPRO_BENCH_SCALE=full`` switches from the
CI-scale defaults to the paper's sizes (see :mod:`.common`).
"""

from .common import (
    BenchScale,
    bench_scale,
    colorhist_dataset,
    default_reducers,
    make_workload,
    overlapping_cluster_specs,
    synthetic_small,
)
from .fig7 import PrecisionSweep, run_fig7a, run_fig7b
from .fig8 import FIG8_DIMS, run_fig8a, run_fig8b
from .fig9 import (
    FIG9_DIMS,
    CostSweep,
    run_cost_sweep_colorhist,
    run_cost_sweep_synthetic,
)
from .fig10 import cpu_series_colorhist, cpu_series_synthetic
from .fig11 import ScalabilityPoint, run_fig11a, run_fig11b

__all__ = [
    "BenchScale",
    "CostSweep",
    "FIG8_DIMS",
    "FIG9_DIMS",
    "PrecisionSweep",
    "ScalabilityPoint",
    "bench_scale",
    "colorhist_dataset",
    "cpu_series_colorhist",
    "cpu_series_synthetic",
    "default_reducers",
    "make_workload",
    "overlapping_cluster_specs",
    "run_cost_sweep_colorhist",
    "run_cost_sweep_synthetic",
    "run_fig7a",
    "run_fig7b",
    "run_fig8a",
    "run_fig8b",
    "run_fig11a",
    "run_fig11b",
    "synthetic_small",
]
