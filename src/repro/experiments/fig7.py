"""Figure 7 — query precision vs. ellipticity (7a) and vs. the number of
correlated clusters (7b).

Paper claims to reproduce:

* 7a — MMDR ≫ LDR ≫ GDR across the whole ellipticity range; GDR is capped
  around 15% because the data is not globally correlated; LDR's precision
  decays faster than MMDR's as ellipticity shrinks.
* 7b — with a single correlated cluster all three methods are equally good;
  as clusters multiply (and intersect, at different scales), LDR and GDR
  collapse while MMDR stays flat because the Mahalanobis clustering finds
  the intrinsic clusters regardless of their count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..data.synthetic import SyntheticSpec, generate_correlated_clusters
from ..eval.precision import evaluate_precision
from .common import (
    MASTER_SEED,
    bench_scale,
    default_reducers,
    make_workload,
    overlapping_cluster_specs,
)

__all__ = ["PrecisionSweep", "run_fig7a", "run_fig7b"]

#: Ellipticity sweep for 7a: e = variance_r / variance_e - 1 per Def. 3.1.
#: The range sits just above the nearest-neighbor "meaningfulness" cliff
#: (Beyer et al., the paper's [3]): below e ~ 8 with Table-1 thresholds the
#: clusters are so compact that the true 10-NN distance collapses into the
#: pairwise-distance noise floor and *every* lossy method degenerates
#: together — the informative part of the sweep is where methods differ.
FIG7A_ELLIPTICITIES: Sequence[float] = (8.0, 9.0, 11.0, 13.0, 16.0)
#: Cluster-count sweep for 7b.
FIG7B_CLUSTER_COUNTS: Sequence[int] = (1, 2, 4, 6, 8, 10)


@dataclass(frozen=True)
class PrecisionSweep:
    """One precision panel: x values and one precision series per method."""

    x_label: str
    x_values: List[float]
    series: Dict[str, List[float]]


def _sweep_point(
    spec: SyntheticSpec, seed: int
) -> Dict[str, float]:
    data = generate_correlated_clusters(
        spec, np.random.default_rng(seed)
    ).points
    workload = make_workload(data, seed_offset=seed % 997)
    precisions: Dict[str, float] = {}
    for name, reducer in default_reducers().items():
        reduced = reducer.reduce(data, np.random.default_rng(seed + 13))
        report = evaluate_precision(data, reduced, workload)
        precisions[name] = report.precision
    return precisions


def run_fig7a(
    ellipticities: Sequence[float] = FIG7A_ELLIPTICITIES,
) -> PrecisionSweep:
    """Precision vs. ellipticity on the small synthetic dataset.

    Each sweep point regenerates the dataset with
    ``variance_r = (1 + e) * variance_e``, keeping everything else fixed —
    the Appendix-A knob for the ratio of energy in retained vs. eliminated
    dimensions.
    """
    scale = bench_scale()
    series: Dict[str, List[float]] = {"MMDR": [], "LDR": [], "GDR": []}
    base_minor = 0.012
    n_clusters = 6
    for step, e in enumerate(ellipticities):
        seed = MASTER_SEED + 100 + step
        rng = np.random.default_rng(seed)
        clusters = overlapping_cluster_specs(
            scale.synthetic_points,
            intrinsic_dims=(8,) * n_clusters,
            size_weights=(1,) * n_clusters,
            rng=rng,
            variance_lo=(1.0 + float(e)) * base_minor,
            variance_hi=(1.0 + float(e)) * base_minor * 1.05,
            variance_e=base_minor,
        )
        spec = SyntheticSpec(
            n_points=scale.synthetic_points,
            dimensionality=64,
            n_clusters=n_clusters,
            noise_fraction=0.005,
            clusters=tuple(clusters),
        )
        point = _sweep_point(spec, seed)
        for name, precision in point.items():
            series[name].append(precision)
    return PrecisionSweep(
        x_label="ellipticity",
        x_values=[float(e) for e in ellipticities],
        series=series,
    )


def run_fig7b(
    cluster_counts: Sequence[int] = FIG7B_CLUSTER_COUNTS,
) -> PrecisionSweep:
    """Precision vs. the number of correlated clusters."""
    scale = bench_scale()
    series: Dict[str, List[float]] = {"MMDR": [], "LDR": [], "GDR": []}
    for step, n_clusters in enumerate(cluster_counts):
        seed = MASTER_SEED + 200 + step
        rng = np.random.default_rng(seed)
        clusters = overlapping_cluster_specs(
            scale.synthetic_points,
            intrinsic_dims=(8,) * int(n_clusters),
            size_weights=(1,) * int(n_clusters),
            rng=rng,
        )
        spec = SyntheticSpec(
            n_points=scale.synthetic_points,
            dimensionality=64,
            n_clusters=int(n_clusters),
            noise_fraction=0.005,
            clusters=tuple(clusters),
        )
        point = _sweep_point(spec, seed)
        for name, precision in point.items():
            series[name].append(precision)
    return PrecisionSweep(
        x_label="n_clusters",
        x_values=[float(c) for c in cluster_counts],
        series=series,
    )
