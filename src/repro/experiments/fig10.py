"""Figure 10 — CPU cost of the indexing schemes.

The measurement is shared with Figure 9 (one sweep yields both); this module
just exposes the CPU views.  Two readings are reported:

* ``mean_cpu_seconds`` — wall-clock time of the search code (the paper's
  metric; host-dependent);
* ``mean_cpu_work`` — the deterministic proxy: dimension-weighted distance
  computations plus 1-d key comparisons.  This is what the bench assertions
  check, because it is exactly the structural quantity the paper argues
  about (gLDR pays d-dimensional L-norms in its internal nodes, iDistance
  pays single-dimensional comparisons).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .fig9 import (
    FIG9_DIMS,
    CostSweep,
    run_cost_sweep_colorhist,
    run_cost_sweep_synthetic,
)

__all__ = ["cpu_series_synthetic", "cpu_series_colorhist", "FIG9_DIMS"]


def cpu_series_synthetic(
    dims: Sequence[int] = FIG9_DIMS,
) -> Dict[str, Dict[str, List[float]]]:
    """Figure 10a: {'seconds': per-scheme series, 'work': per-scheme series}."""
    sweep: CostSweep = run_cost_sweep_synthetic(tuple(dims))
    return {
        "seconds": sweep.series("mean_cpu_seconds"),
        "work": sweep.series("mean_cpu_work"),
    }


def cpu_series_colorhist(
    dims: Sequence[int] = FIG9_DIMS,
) -> Dict[str, Dict[str, List[float]]]:
    """Figure 10b: same views on the color-histogram dataset."""
    sweep: CostSweep = run_cost_sweep_colorhist(tuple(dims))
    return {
        "seconds": sweep.series("mean_cpu_seconds"),
        "work": sweep.series("mean_cpu_work"),
    }
