"""Figure 11 — scalability of (Scalable) MMDR.

11a varies the data size at fixed dimensionality (paper: 50 K -> 1 M points
at 100 dims, 500 K-point buffer) and reports the total response time (TRT)
to produce the optimal subspaces.  The claim: TRT grows *linearly* with N
and shows **no jump when the data outgrows the buffer**, because Scalable
MMDR streams each chunk exactly once.  We report wall-clock TRT plus the
sequential page reads charged by the streaming passes — the page count is
the machine-independent witness that the data was scanned a constant number
of times.

11b varies the dimensionality at fixed N (paper: 50 -> 200 dims at 1 M
points).  The claim: TRT is ~quadratic in d (covariance work is O(d^2) per
point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.config import MMDRConfig
from ..core.scalable import ScalableMMDR
from ..data.synthetic import SyntheticSpec, generate_correlated_clusters
from ..storage.metrics import CostCounters
from .common import MASTER_SEED, bench_scale

__all__ = ["ScalabilityPoint", "run_fig11a", "run_fig11b"]


@dataclass(frozen=True)
class ScalabilityPoint:
    """One TRT measurement."""

    n_points: int
    dimensionality: int
    trt_seconds: float
    sequential_page_reads: int
    n_subspaces: int
    streams: int


def _dataset(n_points: int, dimensionality: int, seed: int) -> np.ndarray:
    # Plain Appendix-A clusters (scattered, moderate count) keep the fit
    # cost dominated by the clustering/PCA machinery Figure 11 times.
    spec = SyntheticSpec(
        n_points=n_points,
        dimensionality=dimensionality,
        n_clusters=5,
        retained_dims=8,
        variance_r=0.17,
        variance_e=0.012,
        noise_fraction=0.005,
    )
    return generate_correlated_clusters(
        spec, np.random.default_rng(seed)
    ).points


def _measure(data: np.ndarray, seed: int) -> ScalabilityPoint:
    counters = CostCounters()
    fitter = ScalableMMDR(MMDRConfig())
    model = fitter.fit(data, np.random.default_rng(seed), counters)
    return ScalabilityPoint(
        n_points=data.shape[0],
        dimensionality=data.shape[1],
        trt_seconds=model.stats.fit_seconds,
        sequential_page_reads=counters.sequential_reads,
        n_subspaces=model.n_subspaces,
        streams=model.stats.streams_processed,
    )


def run_fig11a(
    sizes: Sequence[int] = (), dimensionality: int = 100
) -> List[ScalabilityPoint]:
    """TRT vs data size at fixed dimensionality (paper: 100)."""
    scale = bench_scale()
    if not sizes:
        top = scale.scal_points_max
        sizes = tuple(max(1000, int(top * f)) for f in (0.05, 0.25, 0.5, 0.75, 1.0))
    points = []
    for step, n in enumerate(sizes):
        data = _dataset(int(n), dimensionality, MASTER_SEED + 400 + step)
        points.append(_measure(data, MASTER_SEED + 450 + step))
    return points


def run_fig11b(
    dims: Sequence[int] = (), n_points: int = 0
) -> List[ScalabilityPoint]:
    """TRT vs dimensionality at fixed data size (paper: 1 M points)."""
    scale = bench_scale()
    if not dims:
        top = scale.scal_dims_max
        dims = tuple(sorted({max(16, int(top * f)) for f in (0.25, 0.5, 0.75, 1.0)}))
    n = n_points or scale.scal_points_max
    points = []
    for step, d in enumerate(dims):
        data = _dataset(int(n), int(d), MASTER_SEED + 500 + step)
        points.append(_measure(data, MASTER_SEED + 550 + step))
    return points
