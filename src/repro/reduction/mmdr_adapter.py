"""MMDR exposed through the common :class:`~repro.reduction.base.Reducer`
interface, so the experiment harness can sweep GDR / LDR / MMDR uniformly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config import DEFAULT_CONFIG, MMDRConfig
from ..core.mmdr import MMDR
from ..core.scalable import ScalableMMDR
from ..core.subspace import MMDRModel
from .base import ReducedDataset, Reducer

__all__ = ["MMDRReducer", "model_to_reduced"]


def model_to_reduced(model: MMDRModel, method: str = "MMDR") -> ReducedDataset:
    """Convert a fitted :class:`MMDRModel` into the common currency."""
    return ReducedDataset(
        method=method,
        subspaces=model.subspaces,
        outliers=model.outliers,
        n_points=model.n_points,
        dimensionality=model.dimensionality,
        info={
            "fit_seconds": model.stats.fit_seconds,
            "outlier_fraction": (
                model.outliers.size / model.n_points if model.n_points else 0.0
            ),
        },
    )


class MMDRReducer(Reducer):
    """MMDR (or Scalable MMDR) as a Reducer.

    ``target_dim`` caps MaxDim so sweeps hold the retained dimensionality
    equal across methods; with ``target_dim=None`` the Dimensionality
    Optimization step picks each subspace's own optimum, which is MMDR's
    headline behaviour.
    """

    name = "MMDR"

    def __init__(
        self,
        config: MMDRConfig = DEFAULT_CONFIG,
        scalable: bool = False,
    ) -> None:
        self.config = config
        self.scalable = scalable

    def reduce(
        self,
        data: np.ndarray,
        rng: np.random.Generator,
        target_dim: Optional[int] = None,
    ) -> ReducedDataset:
        config = self.config
        if target_dim is not None:
            if target_dim < 1:
                raise ValueError(f"target_dim must be >= 1, got {target_dim}")
            config = config.with_overrides(
                max_dim=target_dim,
                # Pinned-dimensionality sweeps measure information kept at
                # exactly target_dim, so the shrink-while-flat loop is off.
                mpe_change_threshold=0.0,
            )
        fitter = (
            ScalableMMDR(config) if self.scalable else MMDR(config)
        )
        model = fitter.fit(np.asarray(data, dtype=np.float64), rng)
        return model_to_reduced(model, method=self.name)
