"""Dimensionality-reduction methods under one interface.

* :class:`GDRReducer` — Global Dimensionality Reduction (one global PCA).
* :class:`LDRReducer` — Local Dimensionality Reduction (Euclidean clusters +
  per-cluster PCA; Chakrabarti & Mehrotra, VLDB 2000).
* :class:`MMDRReducer` — the paper's contribution, adapted from
  :class:`repro.core.MMDR` / :class:`repro.core.ScalableMMDR`.
"""

from .base import ReducedDataset, Reducer
from .gdr import GDRReducer
from .ldr import LDRReducer
from .mmdr_adapter import MMDRReducer, model_to_reduced

__all__ = [
    "GDRReducer",
    "LDRReducer",
    "MMDRReducer",
    "ReducedDataset",
    "Reducer",
    "model_to_reduced",
]
