"""Global Dimensionality Reduction (GDR) baseline.

GDR (Chakrabarti & Mehrotra's first strategy, §2) reduces the *whole*
dataset with one global PCA: a single subspace, one axis system, no
outliers.  It is optimal when the data is globally correlated and collapses
when it is not — the paper's Figure 7 shows it stuck at ~15% precision on
multi-cluster synthetic data precisely because a single plane cannot follow
several differently-oriented cluster subspaces.

Without an explicit ``target_dim``, GDR keeps the smallest number of
components whose explained variance reaches ``variance_target``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.geometry import projection_distances
from ..core.subspace import EllipticalSubspace, OutlierSet
from ..linalg.mahalanobis import estimate_covariance
from ..linalg.pca import fit_pca
from .base import ReducedDataset, Reducer

__all__ = ["GDRReducer"]


class GDRReducer(Reducer):
    """One global PCA subspace for the entire dataset."""

    name = "GDR"

    def __init__(self, variance_target: float = 0.9, max_dim: int = 20) -> None:
        if not 0.0 < variance_target <= 1.0:
            raise ValueError(
                f"variance_target must be in (0, 1], got {variance_target}"
            )
        if max_dim < 1:
            raise ValueError(f"max_dim must be >= 1, got {max_dim}")
        self.variance_target = variance_target
        self.max_dim = max_dim

    def reduce(
        self,
        data: np.ndarray,
        rng: np.random.Generator,
        target_dim: Optional[int] = None,
    ) -> ReducedDataset:
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n, d = data.shape
        if n == 0:
            raise ValueError("cannot reduce an empty dataset")
        del rng  # GDR is deterministic

        pca = fit_pca(data)
        if target_dim is not None:
            if target_dim < 1:
                raise ValueError(f"target_dim must be >= 1, got {target_dim}")
            d_r = min(target_dim, d)
        else:
            d_r = self._pick_dim(pca.explained_variance_ratio(), d)

        dists = projection_distances(data, pca, d_r)
        mean = pca.mean
        basis = pca.basis(d_r)
        subspace = EllipticalSubspace(
            subspace_id=0,
            mean=mean,
            basis=basis,
            covariance=estimate_covariance(data),
            member_ids=np.arange(n, dtype=np.int64),
            projections=(data - mean) @ basis,
            discovered_at_dim=d,
            mpe=dists.mpe,
            ellipticity=dists.ellipticity,
        )
        return ReducedDataset(
            method=self.name,
            subspaces=[subspace],
            outliers=OutlierSet(
                member_ids=np.zeros(0, dtype=np.int64),
                points=np.zeros((0, d)),
            ),
            n_points=n,
            dimensionality=d,
            info={"global_mpe": dists.mpe},
        )

    def _pick_dim(self, variance_ratio: np.ndarray, d: int) -> int:
        cumulative = np.cumsum(variance_ratio)
        enough = np.flatnonzero(cumulative >= self.variance_target)
        d_r = int(enough[0]) + 1 if enough.size else d
        return max(1, min(d_r, self.max_dim, d))
