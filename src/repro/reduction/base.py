"""Common API for dimensionality-reduction methods.

The experiments compare three reducers — GDR, LDR, MMDR — so they share one
output currency: a :class:`ReducedDataset` holding a list of
:class:`~repro.core.subspace.EllipticalSubspace` (each cluster in its own
axis system, possibly with different retained dimensionality) plus an
:class:`~repro.core.subspace.OutlierSet` kept in the original space.  GDR is
the degenerate case of a single global subspace with no outliers.

Indexes build from a :class:`ReducedDataset`; the precision evaluation in
:mod:`repro.eval.precision` queries it directly (index-free), matching how
Figures 7–8 measure the reduction itself rather than any index.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.subspace import EllipticalSubspace, OutlierSet

__all__ = ["ReducedDataset", "Reducer", "retarget_dimensionality"]


@dataclass
class ReducedDataset:
    """Output of any reducer: per-cluster subspaces plus outliers."""

    method: str
    subspaces: List[EllipticalSubspace]
    outliers: OutlierSet
    n_points: int
    dimensionality: int
    info: Dict[str, float] = field(default_factory=dict)
    #: Search metric the reduction was prepared for.  ``"l2"`` is the
    #: paper's setting; ``"cosine"`` means the input rows were unit-
    #: normalized before reduction, under which cosine distance is a
    #: monotone function of L2 and every index searches unchanged
    #: (DESIGN.md §13).  Indexes inherit this so they can normalize
    #: queries and inserts the same way.
    metric: str = "l2"

    def __post_init__(self) -> None:
        covered = sum(s.size for s in self.subspaces) + self.outliers.size
        if covered != self.n_points:
            raise ValueError(
                f"subspaces + outliers cover {covered} points, "
                f"dataset has {self.n_points}"
            )
        if self.metric not in ("l2", "cosine"):
            raise ValueError(
                f"metric must be 'l2' or 'cosine', got {self.metric!r}"
            )

    @property
    def n_subspaces(self) -> int:
        return len(self.subspaces)

    def reduced_dims(self) -> List[int]:
        return [s.reduced_dim for s in self.subspaces]

    def mean_reduced_dim(self) -> float:
        """Point-weighted average retained dimensionality (what a
        "dimensionality = X" sweep holds fixed across methods)."""
        total = sum(s.size * s.reduced_dim for s in self.subspaces)
        total += self.outliers.size * self.dimensionality
        return total / self.n_points if self.n_points else 0.0

    def storage_vector_count(self) -> int:
        """Number of stored vectors (subspace projections + raw outliers)."""
        return sum(s.size for s in self.subspaces) + self.outliers.size

    def labels(self) -> np.ndarray:
        """Per-point subspace id, ``-1`` for outliers."""
        labels = np.full(self.n_points, -1, dtype=np.int64)
        for idx, subspace in enumerate(self.subspaces):
            labels[subspace.member_ids] = idx
        return labels


def retarget_dimensionality(
    data: np.ndarray, reduced: ReducedDataset, target_dim: int
) -> ReducedDataset:
    """Re-project every subspace at exactly ``min(target_dim, d)`` retained
    components, keeping memberships and outliers fixed.

    This realizes the paper's "number of dimensions retained" sweeps
    (Figures 8-10): each method discovers its clusters once, with its own
    rules, and then the *representation width* is varied — so a sweep point
    compares how much distance information each method's subspaces keep at
    that width, not how its outlier thresholds react to it.  Per-cluster
    PCA is refit on the members (the basis beyond the original ``d_r`` is
    needed when sweeping upward).
    """
    from ..core.geometry import projection_distances
    from ..linalg.mahalanobis import estimate_covariance
    from ..linalg.pca import fit_pca

    if target_dim < 1:
        raise ValueError(f"target_dim must be >= 1, got {target_dim}")
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    d = reduced.dimensionality
    d_r = min(target_dim, d)
    subspaces = []
    for subspace in reduced.subspaces:
        member_data = data[subspace.member_ids]
        pca = fit_pca(member_data)
        dists = projection_distances(member_data, pca, d_r)
        basis = pca.basis(d_r)
        subspaces.append(
            EllipticalSubspace(
                subspace_id=subspace.subspace_id,
                mean=pca.mean,
                basis=basis,
                covariance=estimate_covariance(member_data),
                member_ids=subspace.member_ids,
                projections=(member_data - pca.mean) @ basis,
                discovered_at_dim=subspace.discovered_at_dim,
                mpe=dists.mpe,
                ellipticity=dists.ellipticity,
            )
        )
    return ReducedDataset(
        method=reduced.method,
        subspaces=subspaces,
        outliers=reduced.outliers,
        n_points=reduced.n_points,
        dimensionality=d,
        info=dict(reduced.info, retargeted_dim=float(d_r)),
        metric=getattr(reduced, "metric", "l2"),
    )


class Reducer(ABC):
    """A dimensionality-reduction method under a common interface.

    ``target_dim`` pins the retained dimensionality for sweeps like Figure 8
    (every method reduced to the same number of dimensions); ``None`` lets
    the method pick its own optimum (MMDR's Dimensionality Optimization,
    LDR's reconstruction-bound rule, GDR's variance threshold).
    """

    #: Short name used in experiment tables ("GDR", "LDR", "MMDR").
    name: str = "base"

    @abstractmethod
    def reduce(
        self,
        data: np.ndarray,
        rng: np.random.Generator,
        target_dim: Optional[int] = None,
    ) -> ReducedDataset:
        """Reduce ``(n, d)`` data; must cover every point exactly once."""
        raise NotImplementedError
