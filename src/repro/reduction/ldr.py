"""Local Dimensionality Reduction (LDR) baseline — Chakrabarti & Mehrotra,
VLDB 2000.

LDR partitions the dataset into clusters with *Euclidean* distance in the
original space, fits a PCA per cluster, picks each cluster's retained
dimensionality so that a target fraction of members reconstruct within a
bound, and sends badly-represented points to an outlier set.  Our
implementation follows the published FindClusters pipeline:

1. spatial clustering (Euclidean k-means) in the original space;
2. per-cluster PCA;
3. per-cluster dimensionality: the smallest ``d_r`` for which at least
   ``frac_points`` of the members have reconstruction distance
   ``<= max_recon_dist`` (or an explicit ``target_dim`` for sweeps);
4. greedy reclustering, iterated: clusters claim points in descending
   coverage order — each point joins the first cluster whose subspace
   reconstructs it within ``max_recon_dist`` — then subspaces and
   dimensionalities are refit on the claimed memberships and the pass
   repeats.  (This is the VLDB'00 FindClusters loop: redundant spatial
   cells collapse into the cluster whose subspace generalizes, so e.g. a
   single globally-correlated cluster ends up as one subspace rather than
   ``max_clusters`` slivers.)  Uncovered points are outliers.

The contrast with MMDR is exactly the paper's §2 critique: the clustering
step "does not consider correlation nor dependency between the dimensions" —
Euclidean k-means finds spherical neighbourhoods, so intersecting elliptical
clusters of different scales are cut along the wrong boundaries, and the
per-cluster subspaces inherit those mistakes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..cluster.kmeans import kmeans
from ..core.geometry import projection_distances
from ..core.subspace import EllipticalSubspace, OutlierSet
from ..linalg.mahalanobis import estimate_covariance
from ..linalg.pca import PCAModel, fit_pca
from .base import ReducedDataset, Reducer

__all__ = ["LDRReducer"]


class LDRReducer(Reducer):
    """Local Dimensionality Reduction with Euclidean clustering."""

    name = "LDR"

    def __init__(
        self,
        max_clusters: int = 10,
        max_recon_dist: float = 0.1,
        frac_points: float = 0.8,
        max_dim: int = 20,
        min_cluster_size: int = 30,
        recluster_iterations: int = 3,
    ) -> None:
        if max_clusters < 1:
            raise ValueError(f"max_clusters must be >= 1, got {max_clusters}")
        if max_recon_dist <= 0:
            raise ValueError(
                f"max_recon_dist must be > 0, got {max_recon_dist}"
            )
        if not 0.0 < frac_points <= 1.0:
            raise ValueError(
                f"frac_points must be in (0, 1], got {frac_points}"
            )
        if max_dim < 1:
            raise ValueError(f"max_dim must be >= 1, got {max_dim}")
        if min_cluster_size < 2:
            raise ValueError(
                f"min_cluster_size must be >= 2, got {min_cluster_size}"
            )
        if recluster_iterations < 1:
            raise ValueError(
                "recluster_iterations must be >= 1, "
                f"got {recluster_iterations}"
            )
        self.max_clusters = max_clusters
        self.max_recon_dist = max_recon_dist
        self.frac_points = frac_points
        self.max_dim = max_dim
        self.min_cluster_size = min_cluster_size
        self.recluster_iterations = recluster_iterations

    def reduce(
        self,
        data: np.ndarray,
        rng: np.random.Generator,
        target_dim: Optional[int] = None,
    ) -> ReducedDataset:
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n, d = data.shape
        if n == 0:
            raise ValueError("cannot reduce an empty dataset")

        clustering = kmeans(data, self.max_clusters, rng)
        models: List[PCAModel] = []
        dims: List[int] = []
        for cluster in range(clustering.n_clusters):
            members = clustering.members(cluster)
            model = fit_pca(data[members])
            models.append(model)
            dims.append(
                self._pick_dim(data[members], model, d, target_dim)
            )

        labels = np.full(n, -1, dtype=np.int64)
        for _ in range(self.recluster_iterations):
            labels = self._greedy_cover(data, models, dims)
            models, dims, changed = self._refit(
                data, labels, models, dims, target_dim
            )
            if not changed:
                break
        labels = self._greedy_cover(data, models, dims)

        subspaces: List[EllipticalSubspace] = []
        for cluster in range(len(models)):
            member_ids = np.flatnonzero(labels == cluster)
            if member_ids.size < self.min_cluster_size:
                labels[member_ids] = -1
                continue
            member_data = data[member_ids]
            model, d_r = models[cluster], dims[cluster]
            dists = projection_distances(member_data, model, d_r)
            basis = model.basis(d_r)
            subspaces.append(
                EllipticalSubspace(
                    subspace_id=len(subspaces),
                    mean=model.mean,
                    basis=basis,
                    covariance=estimate_covariance(member_data),
                    member_ids=member_ids,
                    projections=(member_data - model.mean) @ basis,
                    discovered_at_dim=d,
                    mpe=dists.mpe,
                    ellipticity=dists.ellipticity,
                )
            )

        outlier_ids = np.flatnonzero(labels == -1)
        return ReducedDataset(
            method=self.name,
            subspaces=subspaces,
            outliers=OutlierSet(
                member_ids=outlier_ids,
                points=data[outlier_ids]
                if outlier_ids.size
                else np.zeros((0, d)),
            ),
            n_points=n,
            dimensionality=d,
            info={
                "kmeans_iterations": float(clustering.iterations),
                "outlier_fraction": float(outlier_ids.size) / n,
            },
        )

    def _greedy_cover(
        self,
        data: np.ndarray,
        models: List[PCAModel],
        dims: List[int],
    ) -> np.ndarray:
        """Assign each point to the first (best-covering) cluster whose
        subspace reconstructs it within the bound; ``-1`` if none does."""
        n = data.shape[0]
        recon = np.stack(
            [
                projection_distances(data, models[c], dims[c]).proj_dist_r
                for c in range(len(models))
            ],
            axis=1,
        )
        covered = recon <= self.max_recon_dist
        order = np.argsort(-covered.sum(axis=0), kind="stable")
        labels = np.full(n, -1, dtype=np.int64)
        for cluster in order:
            take = (labels == -1) & covered[:, cluster]
            labels[take] = cluster
        return labels

    def _refit(
        self,
        data: np.ndarray,
        labels: np.ndarray,
        models: List[PCAModel],
        dims: List[int],
        target_dim,
    ):
        """Refit each surviving cluster's subspace on its claimed members.

        Clusters whose claim fell below ``min_cluster_size`` are removed
        (their points will be re-covered or become outliers next pass).
        Returns the new models/dims and whether anything changed.
        """
        d = data.shape[1]
        new_models: List[PCAModel] = []
        new_dims: List[int] = []
        changed = False
        for cluster in range(len(models)):
            member_ids = np.flatnonzero(labels == cluster)
            if member_ids.size < self.min_cluster_size:
                changed = True
                continue
            member_data = data[member_ids]
            model = fit_pca(member_data)
            d_r = self._pick_dim(member_data, model, d, target_dim)
            if d_r != dims[cluster]:
                changed = True
            new_models.append(model)
            new_dims.append(d_r)
        if not new_models:
            # Nothing survived (degenerate thresholds): keep the old set so
            # the caller still produces a model; everything not covered
            # becomes an outlier.
            return models, dims, False
        changed = changed or len(new_models) != len(models)
        return new_models, new_dims, changed

    def _pick_dim(
        self,
        member_data: np.ndarray,
        model: PCAModel,
        d: int,
        target_dim: Optional[int],
    ) -> int:
        """Smallest d_r covering ``frac_points`` of members within the
        reconstruction bound (or the pinned ``target_dim``)."""
        if target_dim is not None:
            if target_dim < 1:
                raise ValueError(f"target_dim must be >= 1, got {target_dim}")
            return min(target_dim, d)
        ceiling = min(self.max_dim, d)
        for d_r in range(1, ceiling + 1):
            dists = projection_distances(member_data, model, d_r)
            covered = float(
                np.count_nonzero(dists.proj_dist_r <= self.max_recon_dist)
            ) / max(1, member_data.shape[0])
            if covered >= self.frac_points:
                return d_r
        return ceiling
