"""Execute a benchmark workload through every execution mode and report.

One :func:`run_bench` call proves two things about a
:class:`~repro.bench.spec.WorkloadSpec` and records the evidence:

1. **Answer stability.**  The same seeded workload is answered four ways —
   the sequential per-query loop, the batched engine, the sequential loop
   under a transient-read fault plan, and (after an online update stream)
   both the live mutated index and its crash-recovered twin rebuilt from
   checkpoint + WAL.  Every mode's result fingerprint must agree with its
   reference, or :class:`FingerprintMismatch` is raised — a wrong answer
   is a hard failure, not a metric.
2. **Logical cost.**  Machine-independent counters are collected from the
   cold-cache sequential leg (the paper's per-query measurement protocol)
   plus the fault and recovery machinery, and wall-clock observations are
   kept strictly advisory.

``mode="approx"`` specs add a fifth way: the PQ-encoded scan-then-rerank
path, whose answers are gated on a measured ``recall_at_k`` band against
the exact fingerprinted reference instead of fingerprint identity
(approximate ADC floats need not be bit-identical across kernel
backends), with a per-depth ``recall_curve`` kept advisory.

The produced :class:`~repro.bench.report.BenchReport` is what the
regression gate compares against committed baselines.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..data.workload import QueryWorkload
from ..index.base import QueryStats, VectorIndex
from ..obs.health import HealthSampler
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer, ensure_tracer
from ..recovery import checkpoint, recover
from ..recovery.harness import apply_op
from ..storage.wal import WriteAheadLog
from .fingerprint import result_fingerprint
from .report import BenchReport
from .spec import WorkloadSpec

__all__ = ["FingerprintMismatch", "run_bench"]


class FingerprintMismatch(AssertionError):
    """Two execution modes of the same workload returned different answers.

    This is the benchmark's correctness gate firing: sequential, batched,
    fault-injected and crash-recovered execution are bit-identical by
    contract, so a mismatch means a fast path, the fault retry path, or
    recovery broke — whatever the cost counters say.
    """


def _run_sequential(
    index: VectorIndex,
    workload: QueryWorkload,
    mode: str = "exact",
    rerank_depth: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, List[QueryStats]]:
    """The reference execution: cold-cache per-query loop."""
    knn_kwargs = (
        {}
        if mode == "exact"
        else {"mode": mode, "rerank_depth": rerank_depth}
    )
    id_rows: List[np.ndarray] = []
    dist_rows: List[np.ndarray] = []
    stats: List[QueryStats] = []
    for query in workload.queries:
        index.reset_cache()
        res = index.knn(query, workload.k, **knn_kwargs)
        id_rows.append(res.ids)
        dist_rows.append(res.distances)
        stats.append(res.stats)
    return np.vstack(id_rows), np.vstack(dist_rows), stats


def _require_match(name: str, got: str, want: str, context: str) -> None:
    if got != want:
        raise FingerprintMismatch(
            f"{context}: {name} fingerprint {got} != reference {want}"
        )


def _recall_at_k(reference_ids: np.ndarray, got_ids: np.ndarray) -> float:
    """Mean per-query recall of ``got_ids`` against the exact answers.

    Computed over id *sets* (order- and distance-free): ties at the k
    boundary may legally reorder without a recall penalty.  Rounded like
    the other float counters so the emitted value is byte-stable.
    """
    total = 0.0
    n_rows = reference_ids.shape[0]
    for ref_row, got_row in zip(reference_ids, got_ids):
        reference = ref_row[ref_row >= 0]
        if reference.size == 0:
            total += 1.0
            continue
        total += (
            np.intersect1d(reference, got_row).size / reference.size
        )
    return round(total / max(1, n_rows), 6)


def run_bench(
    spec: WorkloadSpec,
    tracer: Optional[Tracer] = None,
    workdir: Optional[Union[str, Path]] = None,
) -> BenchReport:
    """Run ``spec`` through every execution mode and build its report.

    ``workdir`` hosts the WAL + checkpoint files of the recovery leg; a
    temporary directory is used (and removed) when omitted.  Pass a real
    ``tracer`` to get one span per execution leg, with cost deltas.
    """
    tracer = ensure_tracer(tracer)
    points = spec.build_points()
    with tracer.span("bench.build", spec=spec.name, scheme=spec.scheme):
        reduced = spec.build_reduced(points)
        index = spec.build_index(reduced)
    workload = spec.build_workload(points)

    counters: dict = {}
    advisory: dict = {}
    fingerprints: dict = {}
    sampler = HealthSampler()
    sampler.sample(index, label="build")
    # One registry reused across instrumented legs, reset between modes so
    # one leg's fault counters cannot leak into another's.
    leg_metrics = MetricsRegistry()

    # Leg 1 — sequential cold-cache loop: the counter reference.
    with tracer.span(
        "bench.sequential", counters=index.counters, spec=spec.name
    ):
        start = time.perf_counter()
        seq_ids, seq_dists, stats = _run_sequential(index, workload)
        wall_sequential = time.perf_counter() - start
    fingerprints["sequential"] = result_fingerprint(seq_ids, seq_dists)
    counters.update(
        page_reads_cold=int(sum(s.page_reads for s in stats)),
        distance_computations=int(
            sum(s.distance_computations for s in stats)
        ),
        distance_flops=int(sum(s.distance_flops for s in stats)),
        key_comparisons=int(sum(s.key_comparisons for s in stats)),
        cpu_work=int(sum(s.cpu_work for s in stats)),
        index_pages=int(index.size_pages),
        n_queries=int(workload.n_queries),
        k=int(workload.k),
    )

    # Leg 2 — batched engine: must reproduce the sequential answers.
    with tracer.span(
        "bench.batch", counters=index.counters, spec=spec.name
    ):
        start = time.perf_counter()
        batch = index.knn_batch(workload.queries, workload.k)
        wall_batch = time.perf_counter() - start
    fingerprints["batch"] = result_fingerprint(batch.ids, batch.distances)
    _require_match(
        "batch", fingerprints["batch"], fingerprints["sequential"], spec.name
    )

    # Warm pass — buffer hit rate over the whole workload on one shared
    # cache (deterministic: fixed access order against an LRU pool).
    with tracer.span(
        "bench.warm", counters=index.counters, spec=spec.name
    ):
        index.reset_cache()
        hits0 = index.pool.hits
        misses0 = index.pool.misses
        for query in workload.queries:
            index.knn(query, workload.k)
        warm_hits = index.pool.hits - hits0
        warm_misses = index.pool.misses - misses0
    warm_total = warm_hits + warm_misses
    counters["buffer_hit_rate_warm"] = (
        round(warm_hits / warm_total, 6) if warm_total else 0.0
    )

    # Approx leg — attach the PQ encoder, then measure recall@k of the
    # scan-then-rerank path against the exact fingerprinted answers.
    # Approximate results may legally differ across kernel backends
    # (ADC floats need not be bit-identical), so no approx fingerprint
    # is emitted: the gate is the banded recall_at_k counter, and the
    # approx-batch agreement below is asserted at runtime only.
    recall_curve: dict = {}
    if spec.mode == "approx":
        with tracer.span(
            "bench.encode", counters=index.counters, spec=spec.name
        ):
            index.attach_encoder(
                spec.build_encoder_config(),
                seed=spec.encode_seed,
                tracer=tracer,
            )
        with tracer.span(
            "bench.approx", counters=index.counters, spec=spec.name
        ):
            start = time.perf_counter()
            apx_ids, apx_dists, apx_stats = _run_sequential(
                index, workload, mode="approx"
            )
            wall_approx = time.perf_counter() - start
        apx_batch = index.knn_batch(
            workload.queries, workload.k, mode="approx"
        )
        _require_match(
            "approx_batch",
            result_fingerprint(apx_batch.ids, apx_batch.distances),
            result_fingerprint(apx_ids, apx_dists),
            spec.name,
        )
        counters.update(
            recall_at_k=_recall_at_k(seq_ids, apx_ids),
            approx_page_reads_cold=int(
                sum(s.page_reads for s in apx_stats)
            ),
            approx_distance_computations=int(
                sum(s.distance_computations for s in apx_stats)
            ),
            approx_cpu_work=int(sum(s.cpu_work for s in apx_stats)),
            encode_code_pages=int(index.encoder.total_code_pages),
        )
        advisory.update(
            wall_seconds_approx=wall_approx,
            qps_approx=workload.n_queries / wall_approx,
            speedup_approx=wall_sequential / wall_approx,
        )
        for depth in sorted({1, 2, spec.rerank_depth}):
            depth_ids, _, _ = _run_sequential(
                index, workload, mode="approx", rerank_depth=depth
            )
            recall_curve[str(depth)] = _recall_at_k(seq_ids, depth_ids)

    # Leg 3 — transient read faults: same answers, observable retries.
    plan = spec.build_fault_plan()
    leg_metrics.reset()
    faulty = index.enable_faults(plan, metrics=leg_metrics)
    try:
        with tracer.span(
            "bench.faulted", counters=index.counters, spec=spec.name
        ):
            fault_ids, fault_dists, _ = _run_sequential(index, workload)
    finally:
        index.disable_faults()
    fingerprints["faulted"] = result_fingerprint(fault_ids, fault_dists)
    _require_match(
        "faulted",
        fingerprints["faulted"],
        fingerprints["sequential"],
        spec.name,
    )
    fault_counters = faulty.fault_metrics.counters
    counters["faults_injected"] = int(
        fault_counters["faults.injected"].value
        if "faults.injected" in fault_counters
        else 0
    )
    counters["faults_retried"] = int(
        fault_counters["faults.retried"].value
        if "faults.retried" in fault_counters
        else 0
    )
    sampler.sample(index, label="queries")

    advisory.update(
        wall_seconds_sequential=wall_sequential,
        wall_seconds_batch=wall_batch,
        qps_sequential=workload.n_queries / wall_sequential,
        qps_batch=workload.n_queries / wall_batch,
        speedup_batch=wall_sequential / wall_batch,
    )

    # Leg 4 — online updates under WAL, then crash recovery: the live
    # mutated index and its recovered twin must answer identically.
    if spec.has_updates:
        ops = spec.build_ops(points, reduced.n_points)
        owns_workdir = workdir is None
        workdir = (
            Path(tempfile.mkdtemp(prefix="repro_bench_"))
            if owns_workdir
            else Path(workdir)
        )
        workdir.mkdir(parents=True, exist_ok=True)
        wal_path = workdir / "wal.log"
        wal = WriteAheadLog(wal_path)
        try:
            index.enable_wal(wal)
            checkpoint(index, workdir / "ckpt0")
            with tracer.span(
                "bench.updates", counters=index.counters, spec=spec.name
            ):
                start = time.perf_counter()
                for op in ops:
                    apply_op(index, op)
                update_s = time.perf_counter() - start
            wal.flush()
            upd_ids, upd_dists, _ = _run_sequential(index, workload)
            fingerprints["updated"] = result_fingerprint(upd_ids, upd_dists)

            with tracer.span("bench.recover", spec=spec.name):
                start = time.perf_counter()
                recovered, rec_report = recover(wal_path)
                recover_s = time.perf_counter() - start
            rec_ids, rec_dists, _ = _run_sequential(recovered, workload)
            fingerprints["recovered"] = result_fingerprint(
                rec_ids, rec_dists
            )
            _require_match(
                "recovered",
                fingerprints["recovered"],
                fingerprints["updated"],
                spec.name,
            )

            # A fresh checkpoint must drop replay work to (near) zero.
            checkpoint(index, workdir / "ckpt1")
            _, rec_after = recover(wal_path)
            counters.update(
                n_update_ops=len(ops),
                wal_records_replayed=int(rec_report.records_scanned),
                wal_txns_committed=int(rec_report.committed_txns),
                wal_metas_applied=int(rec_report.metas_applied),
                wal_pages_redone=int(rec_report.pages_redone),
                wal_records_after_checkpoint=int(
                    rec_after.records_scanned
                ),
                live_count_after_updates=int(index.live_count),
            )
            advisory.update(
                update_seconds=update_s,
                update_ops_per_s=(
                    len(ops) / update_s if update_s > 0 else 0.0
                ),
                recover_seconds=recover_s,
            )
            # Sampled while the WAL is still attached, so the health
            # section carries the wal_* gauges of the mutated index.
            sampler.sample(index, label="updates")
        finally:
            wal.close()
            index.disable_wal()
            if owns_workdir:
                shutil.rmtree(workdir, ignore_errors=True)

    return BenchReport(
        name=spec.name,
        spec=spec.to_dict(),
        counters=counters,
        advisory=advisory,
        fingerprints=fingerprints,
        health=sampler.report().as_dict(),
        recall_curve=recall_curve,
    )
