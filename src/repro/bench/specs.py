"""The default benchmark workload registry.

One smoke-sized workload per index scheme, chosen so the whole gate runs
in well under a minute on CI while still exercising every layer: MMDR /
LDR reduction, index build, cold-cache KNN, the batched engine, transient
faults, online updates under WAL, checkpointing and recovery.

Baselines for these specs are committed under ``benchmarks/baselines/``;
a new workload added here gates nothing until ``python -m repro.bench
update`` commits its baseline.
"""

from __future__ import annotations

from typing import Dict

from .spec import WorkloadSpec

__all__ = ["DEFAULT_SPECS"]


def _registry(*specs: WorkloadSpec) -> Dict[str, WorkloadSpec]:
    registry: Dict[str, WorkloadSpec] = {}
    for spec in specs:
        if spec.name in registry:
            raise ValueError(f"duplicate spec name {spec.name!r}")
        registry[spec.name] = spec
    return registry


DEFAULT_SPECS = _registry(
    # The paper's contribution path: MMDR reduction + extended iDistance.
    WorkloadSpec(
        name="idistance_smoke",
        scheme="iMMDR",
        reducer="mmdr",
        n_points=2000,
        dimensionality=16,
        n_clusters=2,
        retained_dims=4,
        n_queries=24,
        k=10,
        n_inserts=10,
        n_deletes=6,
    ),
    # The gLDR baseline: LDR reduction + one Hybrid tree per cluster.
    WorkloadSpec(
        name="gldr_smoke",
        scheme="gLDR",
        reducer="ldr",
        n_points=1500,
        dimensionality=16,
        n_clusters=2,
        retained_dims=4,
        n_queries=16,
        k=10,
        n_inserts=6,
        n_deletes=4,
    ),
    # The no-index floor: sequential scan over the MMDR reduction.
    WorkloadSpec(
        name="seqscan_smoke",
        scheme="SeqScan",
        reducer="mmdr",
        n_points=1500,
        dimensionality=16,
        n_clusters=2,
        retained_dims=4,
        n_queries=16,
        k=10,
        n_inserts=6,
        n_deletes=4,
    ),
    # Cosine end-to-end: unit-normalized data through MMDR + iDistance,
    # running out-of-core on the mmap store (exercises both new paths).
    WorkloadSpec(
        name="idistance_cosine_smoke",
        scheme="iMMDR",
        reducer="mmdr",
        metric="cosine",
        store="mmap",
        n_points=1500,
        dimensionality=16,
        n_clusters=2,
        retained_dims=4,
        n_queries=16,
        k=10,
        n_inserts=6,
        n_deletes=4,
    ),
    # Approximate tier on the contribution path: per-subspace PQ codes
    # scanned for candidates, exact rerank through iDistance's locate
    # path.  Gated on the recall_at_k band, not fingerprints.
    WorkloadSpec(
        name="idistance_pq_smoke",
        scheme="iMMDR",
        reducer="mmdr",
        mode="approx",
        n_points=2000,
        dimensionality=16,
        n_clusters=2,
        retained_dims=4,
        n_queries=24,
        k=10,
        n_inserts=10,
        n_deletes=6,
    ),
    # Approximate tier over the gLDR baseline: rerank I/O charged to
    # the Hybrid-tree leaves that own each candidate row.
    WorkloadSpec(
        name="gldr_pq_smoke",
        scheme="gLDR",
        reducer="ldr",
        mode="approx",
        n_points=1500,
        dimensionality=16,
        n_clusters=2,
        retained_dims=4,
        n_queries=16,
        k=10,
        n_inserts=6,
        n_deletes=4,
    ),
)
