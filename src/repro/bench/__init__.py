"""Machine-independent benchmark reports and the perf-regression gate.

The paper's evaluation (§6) — like Thomasian's cost-model methodology for
dimensionality-reduced clustered indexing — compares schemes on *logical*
costs: page accesses and distance computations, not wall-clock seconds.
Those are exactly the counters the simulated storage stack and
:mod:`repro.obs` already produce, and they are stable across machines,
Python versions and CPU load.  This package turns them into an enforced
trajectory:

* :class:`WorkloadSpec` — a declarative, fully seeded workload (dataset,
  scheme, build params, query set, fault plan, update stream);
* :func:`run_bench` — executes the workload through four execution modes
  (sequential, batched, transient-fault-injected, and crash-recovered
  after an update stream) and requires their **result fingerprints** —
  stable hashes over KNN ids + quantized distances — to agree;
* :class:`BenchReport` — the versioned JSON artifact: logical counters
  (gate-eligible), advisory wall-clock numbers (never gating), and the
  fingerprints;
* :func:`compare_reports` — per-metric tolerance-band comparison against
  a committed golden baseline;
* ``python -m repro.bench {run,compare,update}`` — the CLI CI runs as the
  ``bench_gate`` step: nonzero exit on any counter or fingerprint drift.

Golden baselines live in ``benchmarks/baselines/*.json``; re-baselining is
``python -m repro.bench update`` with the resulting diff reviewed in the PR.
"""

from .compare import (
    Comparison,
    MetricDelta,
    ToleranceBand,
    compare_reports,
    format_table,
)
from .fingerprint import result_fingerprint
from .report import (
    SCHEMA_VERSION,
    BenchReport,
    BenchReportError,
    encode_view,
    ingest_view,
    recovery_view,
    serve_view,
    throughput_view,
    validate_view,
)
from .runner import FingerprintMismatch, run_bench
from .spec import WorkloadSpec
from .specs import DEFAULT_SPECS

__all__ = [
    "SCHEMA_VERSION",
    "BenchReport",
    "BenchReportError",
    "Comparison",
    "DEFAULT_SPECS",
    "FingerprintMismatch",
    "MetricDelta",
    "ToleranceBand",
    "WorkloadSpec",
    "compare_reports",
    "encode_view",
    "format_table",
    "ingest_view",
    "recovery_view",
    "result_fingerprint",
    "run_bench",
    "serve_view",
    "throughput_view",
    "validate_view",
]
