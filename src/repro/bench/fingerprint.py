"""Stable fingerprints over KNN answer sets.

A fingerprint condenses a whole workload's answers — the ``(Q, k)`` id and
distance matrices — into one hash that can be committed in a baseline and
compared across execution modes.  Two requirements shape it:

* **Order sensitivity.**  Neighbor order *is* the answer (nearest first),
  and workload order is part of the protocol, so the hash covers the
  matrices in row-major order, shapes included.
* **Quantized distances.**  The execution modes we compare (sequential,
  batched, fault-injected, crash-recovered) are bit-identical by contract,
  but a committed baseline must also survive innocuous float formatting.
  Distances are therefore snapped to a fixed absolute quantum (default
  ``1e-9`` — far below any inter-point spacing the workloads produce, far
  above 1-ulp noise) before hashing; ids are hashed exactly.

NaN distances (the invalid-query sentinel rows of
:class:`~repro.index.base.BatchKNNResult`) are mapped to a fixed sentinel
bucket so they fingerprint deterministically too.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["result_fingerprint"]

#: Default distance quantum: answers equal up to 1e-9 hash identically.
DEFAULT_QUANTUM = 1e-9

#: Quantized stand-in for NaN distances (invalid-query rows).
_NAN_SENTINEL = np.int64(-(2**62))


def result_fingerprint(
    ids: np.ndarray,
    distances: np.ndarray,
    quantum: float = DEFAULT_QUANTUM,
) -> str:
    """Hash a workload's KNN answers into a stable hex digest.

    ``ids`` and ``distances`` must have identical shapes (``(Q, k)`` or
    ``(k,)``).  Returns ``"sha256:<hex>"``.  Distances are divided by
    ``quantum`` and rounded to the nearest integer, so any two answer sets
    within ``quantum/2`` of each other per entry fingerprint identically;
    ids are covered exactly, shape and order included.
    """
    ids = np.asarray(ids)
    distances = np.asarray(distances, dtype=np.float64)
    if ids.shape != distances.shape:
        raise ValueError(
            f"ids shape {ids.shape} != distances shape {distances.shape}"
        )
    if quantum <= 0:
        raise ValueError(f"quantum must be > 0, got {quantum}")
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    with np.errstate(invalid="ignore", over="raise"):
        scaled = np.round(distances / quantum)
    finite = np.isfinite(scaled)
    if not finite.all() and np.isinf(scaled).any():
        raise ValueError(
            "distances overflow the fingerprint quantum; pass a larger "
            f"quantum than {quantum}"
        )
    quantized = np.where(finite, scaled, 0.0).astype(np.int64)
    quantized[~finite] = _NAN_SENTINEL
    digest = hashlib.sha256()
    digest.update(repr(ids.shape).encode("ascii"))
    digest.update(ids.tobytes())
    digest.update(np.ascontiguousarray(quantized).tobytes())
    return "sha256:" + digest.hexdigest()
