"""Baseline comparison with per-metric tolerance bands.

The gate logic:

* ``fingerprints`` — compared exactly, always gating.  A changed answer
  set is a correctness regression (or an intentional algorithm change,
  which must re-baseline via ``update`` with the diff reviewed).
* ``counters`` — gating, exact by default; a metric may carry a
  :class:`ToleranceBand` (relative and/or absolute slack) when a small
  drift is acceptable.  Missing and newly appeared counters both gate:
  silently losing a metric hides regressions, and a new metric means the
  baseline is stale and must be regenerated deliberately.
* ``advisory`` — wall-clock numbers; shown in the table for the human,
  never gating.  CI machines are too noisy for timing assertions — the
  logical counters are the machine-independent stand-in (the point of
  this subsystem).

A spec change (same name, different workload definition) also gates: the
counters would not be comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from .report import BenchReport

__all__ = [
    "ToleranceBand",
    "MetricDelta",
    "Comparison",
    "DEFAULT_TOLERANCES",
    "compare_reports",
    "format_table",
]

Number = Union[int, float]


@dataclass(frozen=True)
class ToleranceBand:
    """Allowed drift for one counter: ``|cur - base|`` may not exceed
    ``max(abs_slack, rel_slack * |base|)``."""

    rel_slack: float = 0.0
    abs_slack: float = 0.0

    def __post_init__(self) -> None:
        if self.rel_slack < 0 or self.abs_slack < 0:
            raise ValueError("tolerance slack must be >= 0")

    def allows(self, baseline: Number, current: Number) -> bool:
        return abs(current - baseline) <= max(
            self.abs_slack, self.rel_slack * abs(baseline)
        )


#: Counters that legitimately wiggle a little.  The float hit rate is
#: rounded at emission; one page of slack absorbs rounding of the ratio
#: without letting a real cache regression (which moves it by whole
#: percentage points) through.  Measured recall@k gets a real band:
#: approximate answers may legally differ across kernel backends (ADC
#: floats need not be bit-identical), but a recall move past two
#: percentage points means the encoder or candidate selection broke.
DEFAULT_TOLERANCES: Dict[str, ToleranceBand] = {
    "buffer_hit_rate_warm": ToleranceBand(abs_slack=1e-6),
    "recall_at_k": ToleranceBand(abs_slack=0.02),
}

_EXACT = ToleranceBand()


@dataclass(frozen=True)
class MetricDelta:
    """One row of the regression table."""

    section: str  # "counter" | "advisory" | "fingerprint" | "spec"
    name: str
    baseline: Optional[Union[Number, str]]
    current: Optional[Union[Number, str]]
    status: str  # "ok" | "drift" | "missing" | "new" | "info"

    @property
    def gating(self) -> bool:
        return self.status in ("drift", "missing", "new")


@dataclass
class Comparison:
    """All deltas between one baseline report and one current report."""

    name: str
    rows: List[MetricDelta] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(row.gating for row in self.rows)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [row for row in self.rows if row.gating]


def _compare_section(
    rows: List[MetricDelta],
    section: str,
    baseline: dict,
    current: dict,
    gate: bool,
    tolerances: Dict[str, ToleranceBand],
) -> None:
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            rows.append(
                MetricDelta(
                    section, name, baseline[name], None,
                    "missing" if gate else "info",
                )
            )
            continue
        if name not in baseline:
            rows.append(
                MetricDelta(
                    section, name, None, current[name],
                    "new" if gate else "info",
                )
            )
            continue
        base, cur = baseline[name], current[name]
        if not gate:
            rows.append(MetricDelta(section, name, base, cur, "info"))
            continue
        if section == "fingerprint" or isinstance(base, str):
            status = "ok" if base == cur else "drift"
        else:
            band = tolerances.get(name, _EXACT)
            status = "ok" if band.allows(base, cur) else "drift"
        rows.append(MetricDelta(section, name, base, cur, status))


def compare_reports(
    baseline: BenchReport,
    current: BenchReport,
    tolerances: Optional[Dict[str, ToleranceBand]] = None,
) -> Comparison:
    """Diff ``current`` against ``baseline`` under the gate rules."""
    if tolerances is None:
        tolerances = DEFAULT_TOLERANCES
    comparison = Comparison(name=baseline.name)
    if baseline.spec != current.spec:
        changed = sorted(
            key
            for key in set(baseline.spec) | set(current.spec)
            if baseline.spec.get(key) != current.spec.get(key)
        )
        comparison.rows.append(
            MetricDelta(
                "spec",
                ",".join(changed) or "<structure>",
                "baseline spec",
                "current spec",
                "drift",
            )
        )
    _compare_section(
        comparison.rows, "fingerprint",
        baseline.fingerprints, current.fingerprints, True, tolerances,
    )
    _compare_section(
        comparison.rows, "counter",
        baseline.counters, current.counters, True, tolerances,
    )
    _compare_section(
        comparison.rows, "advisory",
        baseline.advisory, current.advisory, False, tolerances,
    )
    return comparison


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, str):
        # Fingerprints are long; the tail is where digests differ visibly.
        return value if len(value) <= 24 else value[:10] + "…" + value[-6:]
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_table(comparisons: List[Comparison]) -> str:
    """Render comparisons as one aligned regression table."""
    header = ("workload", "section", "metric", "baseline", "current",
              "status")
    table: List[tuple] = [header]
    for comparison in comparisons:
        for row in comparison.rows:
            status = row.status.upper() if row.gating else row.status
            table.append(
                (
                    comparison.name,
                    row.section,
                    row.name,
                    _fmt(row.baseline),
                    _fmt(row.current),
                    status,
                )
            )
    widths = [
        max(len(str(row[col])) for row in table)
        for col in range(len(header))
    ]
    lines = []
    for i, row in enumerate(table):
        lines.append(
            "  ".join(
                str(cell).ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    verdict = (
        "OK: no gating drift"
        if all(c.ok for c in comparisons)
        else "DRIFT: "
        + ", ".join(
            f"{c.name} ({len(c.regressions)} metric(s))"
            for c in comparisons
            if not c.ok
        )
    )
    return "\n".join(lines + ["", verdict])
