"""Declarative, fully seeded benchmark workloads.

A :class:`WorkloadSpec` names everything needed to reproduce one benchmark
run from nothing: the synthetic dataset (shape + seed), the reduction, the
index scheme, the query set (count, k, seed), the transient-fault plan used
by the fault-injected execution leg, and the online update stream used by
the crash-recovery leg.  Every source of randomness is an explicit seed, so
the same spec produces the same index, the same queries, the same faults
and the same update ops on every machine — which is what lets the logical
counters and result fingerprints in a :class:`~repro.bench.report.BenchReport`
be committed as golden baselines.

The spec dict round-trips through JSON verbatim and is embedded in every
report, so a baseline is self-describing: ``python -m repro.bench compare``
re-runs exactly the workload the baseline encodes, not whatever the current
registry happens to define.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Callable, Dict, List

import numpy as np

from ..data.synthetic import SyntheticSpec, generate_correlated_clusters
from ..data.workload import QueryWorkload, sample_queries
from ..encode import EncoderConfig
from ..index.base import VectorIndex
from ..index.global_ldr import GlobalLDRIndex
from ..index.idistance import ExtendedIDistance
from ..index.seqscan import SequentialScan
from ..linalg.kernels import normalize_rows
from ..recovery.harness import Op, make_update_workload
from ..reduction import LDRReducer, MMDRReducer, ReducedDataset
from ..storage.faults import FaultPlan
from ..storage.mmap_store import MmapPageStore

__all__ = ["WorkloadSpec", "INDEX_SCHEMES", "REDUCERS"]

#: Index scheme name -> constructor over a reduced dataset.
INDEX_SCHEMES: Dict[str, Callable[[ReducedDataset], VectorIndex]] = {
    "iMMDR": ExtendedIDistance,
    "gLDR": GlobalLDRIndex,
    "SeqScan": SequentialScan,
}

#: Reducer name -> factory.
REDUCERS: Dict[str, Callable[[], object]] = {
    "mmdr": MMDRReducer,
    "ldr": LDRReducer,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark workload, fully determined by its fields."""

    name: str
    scheme: str = "iMMDR"
    reducer: str = "mmdr"
    #: Search metric: "l2" (the paper's setting) or "cosine" (data rows
    #: unit-normalized before reduction; queries/inserts normalized by the
    #: index — see DESIGN.md §13).
    metric: str = "l2"
    #: Physical page store: "memory" (default) or "mmap" (out-of-core
    #: :class:`~repro.storage.mmap_store.MmapPageStore`).  Logical counters
    #: and fingerprints are store-independent by contract.
    store: str = "memory"

    # Synthetic dataset (repro.data.synthetic).
    n_points: int = 2000
    dimensionality: int = 16
    n_clusters: int = 2
    retained_dims: int = 4
    variance_r: float = 0.3
    variance_e: float = 0.015
    noise_fraction: float = 0.01
    data_seed: int = 42
    reduce_seed: int = 0

    # Query workload.
    n_queries: int = 24
    k: int = 10
    query_seed: int = 1
    query_method: str = "perturbed"

    # Transient-fault leg (read faults only: results must be unchanged).
    fault_seed: int = 7
    transient_read_prob: float = 0.05

    # Update + crash-recovery leg (0/0 disables it).
    n_inserts: int = 10
    n_deletes: int = 6
    update_seed: int = 3
    update_beta: float = 0.25

    # Approximate leg (DESIGN.md §16): mode="approx" attaches a PQ
    # encoder after the exact legs and measures recall@k against the
    # fingerprinted exact answers; the pq_*/rerank fields are the
    # recall knob.  Exact specs never see these (see to_dict).
    mode: str = "exact"
    pq_subquantizers: int = 4
    pq_codebook: int = 16
    rerank_depth: int = 4
    encode_seed: int = 11

    def __post_init__(self) -> None:
        if self.scheme not in INDEX_SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; "
                f"expected one of {sorted(INDEX_SCHEMES)}"
            )
        if self.reducer not in REDUCERS:
            raise ValueError(
                f"unknown reducer {self.reducer!r}; "
                f"expected one of {sorted(REDUCERS)}"
            )
        if self.metric not in ("l2", "cosine"):
            raise ValueError(
                f"metric must be 'l2' or 'cosine', got {self.metric!r}"
            )
        if self.store not in ("memory", "mmap"):
            raise ValueError(
                f"store must be 'memory' or 'mmap', got {self.store!r}"
            )
        if self.mode not in ("exact", "approx"):
            raise ValueError(
                f"mode must be 'exact' or 'approx', got {self.mode!r}"
            )
        if self.pq_subquantizers < 1:
            raise ValueError(
                f"pq_subquantizers must be >= 1, "
                f"got {self.pq_subquantizers}"
            )
        if not 1 <= self.pq_codebook <= 256:
            raise ValueError(
                f"pq_codebook must be in [1, 256], got {self.pq_codebook}"
            )
        if self.rerank_depth < 1:
            raise ValueError(
                f"rerank_depth must be >= 1, got {self.rerank_depth}"
            )

    # -- serialization -------------------------------------------------

    #: Fields added by the approximate tier.  They are elided from
    #: to_dict at their default values so the spec dicts embedded in
    #: pre-approx golden baselines stay byte-identical (the comparator
    #: gates on spec inequality); from_dict fills the defaults back in,
    #: so elided dicts round-trip to the same spec.
    _APPROX_FIELDS = (
        "mode",
        "pq_subquantizers",
        "pq_codebook",
        "rerank_depth",
        "encode_seed",
    )

    def to_dict(self) -> dict:
        data = asdict(self)
        for field in fields(self):
            if (
                field.name in self._APPROX_FIELDS
                and data[field.name] == field.default
            ):
                del data[field.name]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        """Rebuild a spec from its dict form, rejecting unknown keys (a
        typo'd or future field silently ignored would change the workload
        without changing the baseline)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown WorkloadSpec fields: {sorted(unknown)}"
            )
        return cls(**data)

    # -- builders ------------------------------------------------------

    @property
    def has_updates(self) -> bool:
        return self.n_inserts + self.n_deletes > 0

    def build_points(self) -> np.ndarray:
        spec = SyntheticSpec(
            n_points=self.n_points,
            dimensionality=self.dimensionality,
            n_clusters=self.n_clusters,
            retained_dims=self.retained_dims,
            variance_r=self.variance_r,
            variance_e=self.variance_e,
            noise_fraction=self.noise_fraction,
        )
        data = generate_correlated_clusters(
            spec, np.random.default_rng(self.data_seed)
        )
        points = data.points
        if self.metric == "cosine":
            # Cosine = L2 over unit vectors: normalization happens once,
            # here, so reduction, bulk load, and queries all see the same
            # representation.
            points = normalize_rows(points)
        return points

    def build_reduced(self, points: np.ndarray) -> ReducedDataset:
        reducer = REDUCERS[self.reducer]()
        reduced = reducer.reduce(
            points, np.random.default_rng(self.reduce_seed)
        )
        reduced.metric = self.metric
        return reduced

    def build_index(self, reduced: ReducedDataset) -> VectorIndex:
        factory = MmapPageStore if self.store == "mmap" else None
        return INDEX_SCHEMES[self.scheme](reduced, store_factory=factory)

    def build_workload(self, points: np.ndarray) -> QueryWorkload:
        return sample_queries(
            points,
            self.n_queries,
            np.random.default_rng(self.query_seed),
            k=self.k,
            method=self.query_method,
        )

    def build_encoder_config(self) -> EncoderConfig:
        return EncoderConfig(
            n_subquantizers=self.pq_subquantizers,
            codebook_size=self.pq_codebook,
            rerank_depth=self.rerank_depth,
        )

    def build_fault_plan(self) -> FaultPlan:
        return FaultPlan(
            seed=self.fault_seed,
            transient_read_prob=self.transient_read_prob,
        )

    def build_ops(self, points: np.ndarray, n_bulk: int) -> List[Op]:
        if not self.has_updates:
            return []
        return make_update_workload(
            points,
            n_bulk,
            np.random.default_rng(self.update_seed),
            n_inserts=self.n_inserts,
            n_deletes=self.n_deletes,
            beta=self.update_beta,
        )
