"""The versioned benchmark report artifact.

A :class:`BenchReport` is what one :func:`~repro.bench.runner.run_bench`
call produces and what ``benchmarks/baselines/*.json`` commits.  Its three
metric sections have different contracts:

* ``counters`` — machine-independent logical costs (page reads, distance
  evaluations, key comparisons, WAL replay counts, buffer hit rate).
  These are **gate-eligible**: the comparator fails CI when they drift
  outside their tolerance band (exact by default).
* ``advisory`` — wall-clock observations (QPS, speedups, recovery
  seconds).  Recorded for trend-watching, shown in the regression table,
  **never gating** — they depend on the host.
* ``fingerprints`` — result fingerprints per execution mode (see
  :mod:`repro.bench.fingerprint`); compared exactly.
* ``health`` — the index's :class:`~repro.obs.health.HealthReport`
  (``as_dict()``) at the end of the run: structural gauges (MPE drift,
  tombstone/delta fractions, WAL backlog) with ok/warn status.  Purely
  advisory and **optional**: absent in pre-PR-6 baselines, ignored by the
  comparator, never gating.
* ``recall_curve`` — the approximate leg's measured recall@k per
  ``rerank_depth`` (depth string -> recall).  Advisory and **optional**
  like ``health``: omitted when empty, so exact-mode reports — including
  every pre-approx golden baseline — remain byte-stable, and the
  comparator never reads it.  The *gating* recall number is the
  ``recall_at_k`` counter (tolerance-banded, see
  :mod:`repro.bench.compare`).

``schema_version`` is checked on load: a report written by a different
schema is rejected with :class:`BenchReportError` rather than being
reinterpreted silently.

The long-standing top-level ``BENCH_throughput.json`` and
``BENCH_recovery.json`` files are kept as flat *views* of a report
(:func:`throughput_view` / :func:`recovery_view`), so their consumers and
their committed history survive the reporter swap; :func:`validate_view`
checks a view file against the expected key set.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from numbers import Real
from pathlib import Path
from typing import Dict, Union

__all__ = [
    "SCHEMA_VERSION",
    "BenchReport",
    "BenchReportError",
    "THROUGHPUT_VIEW_KEYS",
    "RECOVERY_VIEW_KEYS",
    "SERVE_VIEW_KEYS",
    "INGEST_VIEW_KEYS",
    "ENCODE_VIEW_KEYS",
    "throughput_view",
    "recovery_view",
    "serve_view",
    "ingest_view",
    "encode_view",
    "validate_view",
]

SCHEMA_VERSION = 1


class BenchReportError(ValueError):
    """A report (or view) file does not conform to the schema."""


@dataclass(frozen=True)
class BenchReport:
    """One benchmark run's versioned result artifact."""

    name: str
    spec: dict
    counters: Dict[str, Union[int, float]]
    advisory: Dict[str, float] = field(default_factory=dict)
    fingerprints: Dict[str, str] = field(default_factory=dict)
    #: Advisory health section (HealthReport.as_dict()); {} when the run
    #: recorded none.  Optional in files for pre-PR-6 baseline compat.
    health: dict = field(default_factory=dict)
    #: Advisory recall@k per rerank depth (approx legs only); {} on
    #: exact runs.  Optional in files so pre-approx baselines stay
    #: byte-stable.
    recall_curve: Dict[str, float] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        # Empty optional sections are omitted, keeping reports from runs
        # that record none identical to older files (health: pre-PR-6;
        # recall_curve: every exact-mode run).
        for optional in ("health", "recall_curve"):
            if not data[optional]:
                data.pop(optional)
        # schema_version leads in the file for human readers.
        return {
            "schema_version": data.pop("schema_version"),
            **data,
        }

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps())
        return path

    @classmethod
    def from_dict(cls, data: object) -> "BenchReport":
        """Validate and rebuild a report; raises :class:`BenchReportError`
        on any shape, type, or schema-version problem."""
        if not isinstance(data, dict):
            raise BenchReportError(
                f"report must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise BenchReportError(
                f"schema version mismatch: file has {version!r}, this "
                f"code reads {SCHEMA_VERSION}; re-run `python -m "
                "repro.bench update` with matching code"
            )
        required = {
            "name": str,
            "spec": dict,
            "counters": dict,
            "advisory": dict,
            "fingerprints": dict,
        }
        missing = sorted(set(required) - set(data))
        if missing:
            raise BenchReportError(f"report missing fields: {missing}")
        optional = {"health": dict, "recall_curve": dict}
        unknown = sorted(
            set(data) - set(required) - set(optional) - {"schema_version"}
        )
        if unknown:
            raise BenchReportError(f"report has unknown fields: {unknown}")
        for key, typ in required.items():
            if not isinstance(data[key], typ):
                raise BenchReportError(
                    f"report field {key!r} must be {typ.__name__}, "
                    f"got {type(data[key]).__name__}"
                )
        for key, typ in optional.items():
            if key in data and not isinstance(data[key], typ):
                raise BenchReportError(
                    f"report field {key!r} must be {typ.__name__}, "
                    f"got {type(data[key]).__name__}"
                )
        _check_metric_dict("counters", data["counters"])
        _check_metric_dict("advisory", data["advisory"])
        _check_metric_dict("recall_curve", data.get("recall_curve", {}))
        for mode, fp in data["fingerprints"].items():
            if not isinstance(fp, str):
                raise BenchReportError(
                    f"fingerprint {mode!r} must be a string, "
                    f"got {type(fp).__name__}"
                )
        return cls(
            name=data["name"],
            spec=data["spec"],
            counters=dict(data["counters"]),
            advisory=dict(data["advisory"]),
            fingerprints=dict(data["fingerprints"]),
            health=dict(data.get("health", {})),
            recall_curve=dict(data.get("recall_curve", {})),
            schema_version=version,
        )

    @classmethod
    def loads(cls, text: str) -> "BenchReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise BenchReportError(f"report is not valid JSON: {exc}")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BenchReport":
        return cls.loads(Path(path).read_text())


def _check_metric_dict(section: str, metrics: dict) -> None:
    for name, value in metrics.items():
        if not isinstance(name, str):
            raise BenchReportError(
                f"{section} keys must be strings, got {name!r}"
            )
        if isinstance(value, bool) or not isinstance(value, Real):
            raise BenchReportError(
                f"{section}[{name!r}] must be a number, "
                f"got {type(value).__name__}"
            )


# ---------------------------------------------------------------------
# Flat views: the historical BENCH_*.json formats.
# ---------------------------------------------------------------------

#: BENCH_throughput.json keys (all advisory wall-clock rates).
THROUGHPUT_VIEW_KEYS = (
    "qps_sequential",
    "qps_batch",
    "qps_parallel",
    "speedup_batch",
)

#: BENCH_recovery.json keys (mixed logical counts + advisory seconds).
RECOVERY_VIEW_KEYS = (
    "n_points",
    "n_ops",
    "wal_bytes",
    "update_s",
    "update_ops_per_s",
    "checkpoint_s",
    "recover_s",
    "recover_after_checkpoint_s",
    "records_replayed",
    "records_replayed_after_checkpoint",
)

#: BENCH_serve.json keys (logical serve counts + advisory latencies).
SERVE_VIEW_KEYS = (
    "n_shards",
    "n_requests",
    "n_partial",
    "respawns",
    "retries",
    "qps",
    "p50_ms",
    "p99_ms",
)

#: BENCH_ingest.json keys (logical mutation/reorg counts + advisory rates).
INGEST_VIEW_KEYS = (
    "n_points",
    "n_ops",
    "reorgs",
    "final_generation",
    "crash_schedules",
    "recovered_old",
    "recovered_new",
    "swap_requests",
    "swap_partial",
    "ingest_ops_per_s",
    "reorg_s",
)

#: BENCH_encode.json keys (recall + logical scan/rerank costs + rates).
ENCODE_VIEW_KEYS = (
    "recall_at_k",
    "encode_code_pages",
    "approx_page_reads_cold",
    "approx_distance_computations",
    "qps_sequential",
    "qps_approx",
    "speedup_approx",
)

_VIEW_KEYS = {
    "throughput": THROUGHPUT_VIEW_KEYS,
    "recovery": RECOVERY_VIEW_KEYS,
    "serve": SERVE_VIEW_KEYS,
    "ingest": INGEST_VIEW_KEYS,
    "encode": ENCODE_VIEW_KEYS,
}


def _extract_view(report: BenchReport, keys) -> dict:
    merged = {**report.counters, **report.advisory}
    missing = [key for key in keys if key not in merged]
    if missing:
        raise BenchReportError(
            f"report {report.name!r} lacks view metrics {missing}"
        )
    return {key: merged[key] for key in keys}


def throughput_view(report: BenchReport) -> dict:
    """The flat ``BENCH_throughput.json`` dict, drawn from a report."""
    return _extract_view(report, THROUGHPUT_VIEW_KEYS)


def recovery_view(report: BenchReport) -> dict:
    """The flat ``BENCH_recovery.json`` dict, drawn from a report."""
    return _extract_view(report, RECOVERY_VIEW_KEYS)


def serve_view(report: BenchReport) -> dict:
    """The flat ``BENCH_serve.json`` dict, drawn from a report."""
    return _extract_view(report, SERVE_VIEW_KEYS)


def ingest_view(report: BenchReport) -> dict:
    """The flat ``BENCH_ingest.json`` dict, drawn from a report."""
    return _extract_view(report, INGEST_VIEW_KEYS)


def encode_view(report: BenchReport) -> dict:
    """The flat ``BENCH_encode.json`` dict, drawn from a report."""
    return _extract_view(report, ENCODE_VIEW_KEYS)


def validate_view(kind: str, data: object) -> None:
    """Check a flat view dict (``kind`` of ``"throughput"`` or
    ``"recovery"``) for exactly the expected numeric keys."""
    try:
        keys = _VIEW_KEYS[kind]
    except KeyError:
        raise BenchReportError(
            f"unknown view kind {kind!r}; expected one of "
            f"{sorted(_VIEW_KEYS)}"
        )
    if not isinstance(data, dict):
        raise BenchReportError(
            f"{kind} view must be a JSON object, got {type(data).__name__}"
        )
    missing = sorted(set(keys) - set(data))
    unknown = sorted(set(data) - set(keys))
    if missing or unknown:
        raise BenchReportError(
            f"{kind} view key mismatch: missing {missing}, "
            f"unknown {unknown}"
        )
    _check_metric_dict(f"{kind} view", data)
