"""``python -m repro.bench`` — run, compare, and re-baseline benchmarks.

Subcommands:

* ``run [names...]`` — run workloads from the default registry and write
  their reports (plus ``repro.obs`` JSONL traces) under ``--out``.
* ``compare [names...]`` — the regression gate.  For every committed
  baseline, re-run *the workload the baseline itself encodes* (its
  embedded spec, not the current registry — so a spec edit shows up as
  gated drift instead of silently moving the goalposts), diff under the
  tolerance rules, print the regression table, and exit nonzero on any
  gating drift.  Current reports, traces, and the table are written under
  ``--out`` for CI artifact upload.
* ``update [names...]`` — regenerate the baselines from the registry.
  Legitimate only for a deliberate perf/answer change, with the baseline
  diff reviewed in the PR (see EXPERIMENTS.md, "Regression gate").

Exit codes: 0 success, 1 gating drift, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..obs.export import write_jsonl
from ..obs.tracer import Tracer
from .compare import Comparison, compare_reports, format_table
from .report import BenchReport, BenchReportError
from .runner import FingerprintMismatch, run_bench
from .spec import WorkloadSpec
from .specs import DEFAULT_SPECS

__all__ = ["main"]

DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"
DEFAULT_OUT_DIR = Path("benchmarks") / "out"


def _select_specs(names: List[str]) -> List[WorkloadSpec]:
    if not names:
        return list(DEFAULT_SPECS.values())
    unknown = sorted(set(names) - set(DEFAULT_SPECS))
    if unknown:
        raise SystemExit(
            f"error: unknown workload(s) {unknown}; "
            f"known: {sorted(DEFAULT_SPECS)}"
        )
    return [DEFAULT_SPECS[name] for name in names]


def _run_one(
    spec: WorkloadSpec, out_dir: Path, tracer: Optional[Tracer] = None
) -> BenchReport:
    # One tracer can serve many specs: clear() between runs drops the
    # previous spec's spans/metrics and mints a fresh trace id, so each
    # written trace file stands alone.
    if tracer is None:
        tracer = Tracer()
    else:
        tracer.clear()
    report = run_bench(spec, tracer=tracer)
    report.write(out_dir / f"{spec.name}.json")
    write_jsonl(out_dir / f"{spec.name}.trace.jsonl", tracer)
    return report


def _cmd_run(args: argparse.Namespace) -> int:
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    tracer = Tracer()
    for spec in _select_specs(args.names):
        report = _run_one(spec, out_dir, tracer=tracer)
        print(f"{report.name}: report -> {out_dir / (report.name + '.json')}")
        for mode, fp in sorted(report.fingerprints.items()):
            print(f"  {mode:<12} {fp}")
        if report.health and not report.health.get("ok", True):
            for warning in report.health.get("warnings", []):
                print(f"  health warning: {warning}")
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    baseline_dir = Path(args.baselines)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for spec in _select_specs(args.names):
        report = run_bench(spec)
        path = report.write(baseline_dir / f"{spec.name}.json")
        print(f"{report.name}: baseline updated -> {path}")
    print(
        "\nReview the baseline diff in your PR: a counter or fingerprint "
        "change must be explainable by the code change."
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline_dir = Path(args.baselines)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = sorted(baseline_dir.glob("*.json"))
    if args.names:
        wanted = set(args.names)
        paths = [p for p in paths if p.stem in wanted]
        missing = sorted(wanted - {p.stem for p in paths})
        if missing:
            print(
                f"error: no baseline for workload(s) {missing} "
                f"under {baseline_dir}",
                file=sys.stderr,
            )
            return 2
    if not paths:
        print(
            f"error: no baselines found under {baseline_dir}; run "
            "`python -m repro.bench update` first",
            file=sys.stderr,
        )
        return 2
    comparisons: List[Comparison] = []
    tracer = Tracer()
    for path in paths:
        try:
            baseline = BenchReport.load(path)
            spec = WorkloadSpec.from_dict(baseline.spec)
        except (BenchReportError, ValueError) as exc:
            print(f"error: unusable baseline {path}: {exc}", file=sys.stderr)
            return 2
        try:
            current = _run_one(spec, out_dir, tracer=tracer)
        except FingerprintMismatch as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        comparisons.append(compare_reports(baseline, current))
    table = format_table(comparisons)
    (out_dir / "regression_table.txt").write_text(table + "\n")
    print(table)
    return 0 if all(c.ok for c in comparisons) else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "machine-independent perf-regression and answer-fingerprint "
            "gate"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run workloads, write reports")
    run_p.add_argument("names", nargs="*", help="workload names (default all)")
    run_p.add_argument("--out", default=str(DEFAULT_OUT_DIR))
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser(
        "compare", help="re-run committed baselines and gate on drift"
    )
    cmp_p.add_argument("names", nargs="*", help="workload names (default all)")
    cmp_p.add_argument("--baselines", default=str(DEFAULT_BASELINE_DIR))
    cmp_p.add_argument("--out", default=str(DEFAULT_OUT_DIR))
    cmp_p.set_defaults(fn=_cmd_compare)

    upd_p = sub.add_parser(
        "update", help="regenerate golden baselines (review the diff!)"
    )
    upd_p.add_argument("names", nargs="*", help="workload names (default all)")
    upd_p.add_argument("--baselines", default=str(DEFAULT_BASELINE_DIR))
    upd_p.set_defaults(fn=_cmd_update)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
