"""Approximate speed tier: PQ candidate scan + exact rerank vs exact KNN.

Emits a versioned :class:`repro.bench.BenchReport` (written to
``benchmarks/out/BENCH_encode.report.json``) whose counter section holds
the gate-eligible ``recall_at_k`` plus the approximate tier's logical
costs; the flat ``BENCH_encode.json`` at the repo root is the
:func:`repro.bench.encode_view` of that report

    {"recall_at_k", "encode_code_pages", "approx_page_reads_cold",
     "approx_distance_computations", "qps_sequential", "qps_approx",
     "speedup_approx"}

on the ``idistance_pq_smoke`` workload.  The ``encode_smoke`` subset is
the CI guard: the approximate batched path must agree bit-for-bit with
the per-query approximate loop, and recall@K on the smoke workload must
sit inside the committed tolerance band (>= 0.98 against a 1.0
baseline) — a recall collapse there means the encoder or candidate
selection broke, whatever the timing says.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench import DEFAULT_SPECS, encode_view, run_bench

REPO_ROOT = Path(__file__).resolve().parents[1]
OUT_DIR = REPO_ROOT / "benchmarks" / "out"

SPEC = DEFAULT_SPECS["idistance_pq_smoke"]


def _exact_reference(index, workload):
    ids = []
    for query in workload.queries:
        index.reset_cache()
        ids.append(index.knn(query, workload.k).ids)
    return np.vstack(ids)


def _recall(reference_ids, got_ids):
    total = 0.0
    for ref_row, got_row in zip(reference_ids, got_ids):
        reference = ref_row[ref_row >= 0]
        if reference.size == 0:
            total += 1.0
            continue
        hits = np.intersect1d(reference, got_row).size
        total += hits / reference.size
    return total / max(1, reference_ids.shape[0])


@pytest.mark.encode_smoke
def test_approx_batch_agrees_and_recall_holds():
    """CI guard: approx ``knn_batch`` must return exactly the per-query
    approx answers, and those answers must recall >= 0.98 of exact."""
    points = SPEC.build_points()
    index = SPEC.build_index(SPEC.build_reduced(points))
    workload = SPEC.build_workload(points)
    index.attach_encoder(SPEC.build_encoder_config(), seed=SPEC.encode_seed)

    exact_ids = _exact_reference(index, workload)
    seq_ids, seq_dists = [], []
    for query in workload.queries:
        index.reset_cache()
        res = index.knn(query, workload.k, mode="approx")
        seq_ids.append(res.ids)
        seq_dists.append(res.distances)
    batch = index.knn_batch(workload.queries, workload.k, mode="approx")
    assert np.array_equal(np.vstack(seq_ids), batch.ids), (
        "approx knn_batch ids disagree with approx knn"
    )
    assert np.array_equal(np.vstack(seq_dists), batch.distances), (
        "approx knn_batch distances disagree with approx knn"
    )

    recall = _recall(exact_ids, np.vstack(seq_ids))
    assert recall >= 0.98, (
        f"approx recall@{workload.k} = {recall:.4f}, below the 0.98 band"
    )


def test_encode_bench_report():
    """The acceptance benchmark: run the approx smoke workload through
    the full bench runner and emit the committed-format artifacts."""
    report = run_bench(SPEC)

    assert "recall_at_k" in report.counters
    assert report.counters["recall_at_k"] >= 0.98
    assert report.counters["encode_code_pages"] >= 1
    assert report.recall_curve, "approx leg must emit a recall curve"
    # Exact-mode fingerprints stay untouched by the approx leg: no
    # "approx" entry may ever appear (it would churn golden baselines).
    assert sorted(report.fingerprints) == [
        "batch", "faulted", "recovered", "sequential", "updated",
    ]

    report.write(OUT_DIR / "BENCH_encode.report.json")
    view = encode_view(report)
    out = REPO_ROOT / "BENCH_encode.json"
    out.write_text(json.dumps(view, indent=2, sort_keys=True) + "\n")
    print(
        "\nencode: "
        + ", ".join(f"{k}={v:.4g}" for k, v in sorted(view.items()))
    )
