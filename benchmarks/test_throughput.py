"""Query throughput: sequential loop vs batched engine vs parallel workers.

Emits a versioned :class:`repro.bench.BenchReport` (written to
``benchmarks/out/BENCH_throughput.report.json``) whose advisory section
holds the wall-clock rates; the long-standing flat ``BENCH_throughput.json``
at the repo root is kept as the :func:`repro.bench.throughput_view` of that
report

    {"qps_sequential", "qps_batch", "qps_parallel", "speedup_batch"}

on the 64-d synthetic workload (10k points, 4 correlated clusters, 200
in-distribution queries, 10-NN), and asserts the batched engine clears a
3x speedup over the per-query loop.  The ``perf_smoke`` subset is the CI
guard: a small workload where ``knn_batch`` must agree with ``knn``
bit-for-bit — a disagreement there means the fast path broke, whatever
the timing says.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench import BenchReport, result_fingerprint, throughput_view
from repro.data.synthetic import SyntheticSpec, generate_correlated_clusters
from repro.data.workload import sample_queries
from repro.eval.harness import measure_throughput, run_workload
from repro.index.idistance import ExtendedIDistance
from repro.reduction import MMDRReducer

REPO_ROOT = Path(__file__).resolve().parents[1]
OUT_DIR = REPO_ROOT / "benchmarks" / "out"


def build_index(n_points, dimensionality, n_clusters, retained, n_queries,
                k=10):
    spec = SyntheticSpec(
        n_points=n_points,
        dimensionality=dimensionality,
        n_clusters=n_clusters,
        retained_dims=retained,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    data = generate_correlated_clusters(spec, np.random.default_rng(42))
    reduced = MMDRReducer().reduce(data.points, np.random.default_rng(0))
    workload = sample_queries(
        data.points, n_queries, np.random.default_rng(1), k=k,
        method="perturbed",
    )
    return ExtendedIDistance(reduced), workload


@pytest.mark.perf_smoke
def test_batch_agrees_with_sequential_smoke():
    """CI guard: the batched engine must return exactly the sequential
    answers (ids AND distances) on a small in-distribution workload."""
    index, workload = build_index(
        n_points=2000, dimensionality=16, n_clusters=2, retained=4,
        n_queries=30,
    )
    seq_ids, seq_dists = [], []
    for query in workload.queries:
        index.reset_cache()
        res = index.knn(query, workload.k)
        seq_ids.append(res.ids)
        seq_dists.append(res.distances)
    batch = index.knn_batch(workload.queries, workload.k)
    assert np.array_equal(np.vstack(seq_ids), batch.ids), (
        "knn_batch ids disagree with knn"
    )
    assert np.array_equal(np.vstack(seq_dists), batch.distances), (
        "knn_batch distances disagree with knn"
    )
    # Same check, fingerprint form: this is the digest the regression
    # gate commits, so it must collapse identical answers to one value.
    assert result_fingerprint(
        np.vstack(seq_ids), np.vstack(seq_dists)
    ) == result_fingerprint(batch.ids, batch.distances)


def test_throughput_speedup_and_report():
    """The acceptance benchmark: >= 3x batched-vs-sequential QPS on the
    64-d workload, reported through repro.bench."""
    workload_params = dict(
        n_points=10_000, dimensionality=64, n_clusters=4, retained=4,
        n_queries=200,
    )
    index, workload = build_index(**workload_params)

    # Answers + logical counters once (the fingerprint/counter reference),
    # then the timing comparison (which re-runs and re-verifies agreement).
    ids, dists, stats = run_workload(index, workload, use_batch=False)
    timing = measure_throughput(index, workload, workers=4, repeats=5)

    report = BenchReport(
        name="throughput_64d",
        spec=dict(workload_params, k=workload.k, scheme="iMMDR",
                  data_seed=42, reduce_seed=0, query_seed=1),
        counters={
            "page_reads_cold": int(sum(s.page_reads for s in stats)),
            "distance_computations": int(
                sum(s.distance_computations for s in stats)
            ),
            "cpu_work": int(sum(s.cpu_work for s in stats)),
            "index_pages": int(index.size_pages),
        },
        advisory={key: float(value) for key, value in timing.items()},
        fingerprints={"sequential": result_fingerprint(ids, dists)},
    )
    report.write(OUT_DIR / "BENCH_throughput.report.json")
    view = throughput_view(report)
    out = REPO_ROOT / "BENCH_throughput.json"
    out.write_text(json.dumps(view, indent=2, sort_keys=True) + "\n")
    print(
        "\nthroughput: "
        + ", ".join(f"{k}={v:.1f}" for k, v in sorted(view.items()))
    )
    assert view["speedup_batch"] >= 3.0, (
        f"batched engine only {view['speedup_batch']:.2f}x over sequential"
    )
