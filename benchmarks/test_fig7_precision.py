"""Figure 7 — precision vs. ellipticity (7a) and vs. cluster count (7b).

Shape assertions (paper §6.1):

* MMDR dominates LDR and GDR over the sweeps (small per-point noise
  tolerated; the aggregate advantage must be clear).
* 7a: precision degrades for every method as ellipticity falls.
* 7b: with one cluster all methods are comparable; with many clusters the
  MMDR-vs-baseline gap opens up.
"""

import numpy as np

from repro.eval.reporting import format_series
from repro.experiments.fig7 import run_fig7a, run_fig7b


def _mean(series):
    return float(np.mean(series))


def test_fig7a_precision_vs_ellipticity(run_once):
    sweep = run_once(run_fig7a)
    print("\nFigure 7a — precision vs ellipticity")
    print(format_series(sweep.x_label, sweep.x_values, sweep.series))

    mmdr = sweep.series["MMDR"]
    ldr = sweep.series["LDR"]
    gdr = sweep.series["GDR"]
    # MMDR leads on aggregate and at the high-ellipticity end.
    assert _mean(mmdr) > _mean(ldr)
    assert _mean(mmdr) > _mean(gdr)
    assert mmdr[-1] > ldr[-1]
    # GDR is capped (the paper reports at most ~15% precision: the dataset
    # is not globally correlated).
    assert max(gdr) < 0.25
    # Less correlation (lower e) costs every method precision: the lowest-e
    # point is clearly below the highest-e point.
    assert mmdr[0] < mmdr[-1]
    assert ldr[0] < ldr[-1]


def test_fig7b_precision_vs_cluster_count(run_once):
    sweep = run_once(run_fig7b)
    print("\nFigure 7b — precision vs number of correlated clusters")
    print(format_series(sweep.x_label, sweep.x_values, sweep.series))

    mmdr = sweep.series["MMDR"]
    ldr = sweep.series["LDR"]
    gdr = sweep.series["GDR"]
    # Single (globally correlated) cluster: MMDR and GDR are equally good.
    # Deviation vs the paper: our LDR keeps splitting unimodal data into
    # max_clusters thin cells (its coverage criterion is satisfied by the
    # slivers), so it starts low — see EXPERIMENTS.md.
    assert abs(mmdr[0] - gdr[0]) < 0.15
    # Many clusters: MMDR keeps a clear lead over both baselines.
    assert mmdr[-1] > ldr[-1] + 0.05
    assert mmdr[-1] > gdr[-1] + 0.05
    # MMDR maintains precision as clusters multiply; GDR collapses.
    assert mmdr[-1] >= mmdr[0] - 0.15
    assert gdr[-1] < gdr[0] - 0.3
