"""Figure 9 — per-query I/O cost (page reads) of the indexing schemes.

Shape assertions (paper §6.2):

* the extended-iDistance schemes (iMMDR, iLDR) cost less I/O than gLDR at
  every dimensionality, and iMMDR (the better reduction) is the cheapest
  scheme at the top of the sweep;
* gLDR approaches the sequential scan as dimensionality grows (the paper
  has it crossing at ~20 dims; we assert it reaches >= 55% of the scan);
* sequential-scan I/O grows with dimensionality (fatter vectors).
"""

from repro.eval.reporting import format_series
from repro.experiments.fig9 import (
    run_cost_sweep_colorhist,
    run_cost_sweep_synthetic,
)


def _check_io_shape(sweep):
    io = sweep.series("mean_page_reads")
    imm, ild, gld, seq = (
        io["iMMDR"], io["iLDR"], io["gLDR"], io["SeqScan"]
    )
    # iDistance schemes beat the Hybrid-tree baseline everywhere.
    assert all(m < g for m, g in zip(imm, gld))
    assert all(l < g for l, g in zip(ild, gld))
    # The more effective reduction gives the cheaper index at high dims.
    assert imm[-1] <= ild[-1] * 1.10
    # gLDR degenerates toward the sequential scan as dims grow.
    assert gld[-1] >= 0.55 * seq[-1]
    # Sequential scan grows with dimensionality.
    assert seq[-1] > seq[0]
    return io


def test_fig9a_synthetic(run_once):
    sweep = run_once(run_cost_sweep_synthetic)
    io = _check_io_shape(sweep)
    print("\nFigure 9a — I/O cost vs dims (synthetic, pages/query)")
    print(format_series(sweep.x_label, sweep.x_values, io))


def test_fig9b_colorhist(run_once):
    sweep = run_once(run_cost_sweep_colorhist)
    io = sweep.series("mean_page_reads")
    print("\nFigure 9b — I/O cost vs dims (color histograms, pages/query)")
    print(format_series(sweep.x_label, sweep.x_values, io))
    # Same qualitative ordering on the real-data substitute.
    assert all(m < g for m, g in zip(io["iMMDR"], io["gLDR"]))
    assert io["SeqScan"][-1] > io["SeqScan"][0]
