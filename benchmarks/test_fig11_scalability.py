"""Figure 11 — Scalable MMDR total response time.

Shape assertions (paper §6.3):

* 11a: TRT grows ~linearly in the data size, with no buffer-limit jump —
  checked structurally: the sequential page reads per point are constant
  across sizes (each point is scanned a bounded number of times no matter
  how large the dataset), and TRT growth does not outpace N by more than a
  modest factor.
* 11b: TRT grows superlinearly (toward quadratic) in the dimensionality.
"""

import numpy as np

from repro.eval.reporting import format_table
from repro.experiments.fig11 import run_fig11a, run_fig11b


def test_fig11a_trt_vs_data_size(run_once):
    points = run_once(run_fig11a)
    print("\nFigure 11a — Scalable MMDR TRT vs data size (d=100)")
    print(
        format_table(
            ["n_points", "trt_s", "seq_page_reads", "reads_per_kpoint",
             "subspaces", "streams"],
            [
                (p.n_points, p.trt_seconds, p.sequential_page_reads,
                 p.sequential_page_reads * 1000 / p.n_points,
                 p.n_subspaces, p.streams)
                for p in points
            ],
        )
    )
    sizes = np.array([p.n_points for p in points], dtype=float)
    trt = np.array([p.trt_seconds for p in points])
    reads = np.array([p.sequential_page_reads for p in points], dtype=float)

    # TRT increases with data size.
    assert trt[-1] > trt[0]
    # Near-linear: time per point at the largest size is within 4x of the
    # smallest size's (no blow-up at any buffer boundary).
    per_point = trt / sizes
    assert per_point[-1] < per_point[0] * 4.0
    # The machine-independent witness: pages scanned per point is flat
    # (each point is read a constant number of times regardless of N).
    reads_per_point = reads / sizes
    assert reads_per_point.max() < reads_per_point.min() * 2.0


def test_fig11b_trt_vs_dimensionality(run_once):
    points = run_once(run_fig11b)
    print("\nFigure 11b — Scalable MMDR TRT vs dimensionality")
    print(
        format_table(
            ["dims", "trt_s", "seq_page_reads", "subspaces", "streams"],
            [
                (p.dimensionality, p.trt_seconds,
                 p.sequential_page_reads, p.n_subspaces, p.streams)
                for p in points
            ],
        )
    )
    dims = np.array([p.dimensionality for p in points], dtype=float)
    trt = np.array([p.trt_seconds for p in points])
    # TRT increases clearly with dimensionality.  The paper reports a
    # near-quadratic trend at 1M x 200 dims; at CI scale fixed per-pass
    # overheads damp the exponent, so the assertion is a clear monotone
    # growth (the full-scale run in EXPERIMENTS.md shows the curvature).
    assert trt[-1] > trt[0] * 1.5
    assert all(b > a * 0.8 for a, b in zip(trt, trt[1:]))
