"""Ablations of MMDR's design choices (DESIGN.md §6).

These go beyond the paper's figures and price the individual mechanisms the
paper argues for:

* §4.2 lookup table + activity filter — fewer Mahalanobis evaluations at
  unchanged clustering quality;
* Definition 3.2's *normalized* distance — resistance to a big elongated
  cluster swallowing small neighbours;
* the *multi-level* recursion — starting from a 1-dimensional projection
  vs clustering once in the full space;
* §4.3's stream fraction ε — TRT and model quality across chunk sizes.
"""

import time

import numpy as np

from repro.cluster.elliptical import EllipticalKMeans
from repro.core.config import MMDRConfig
from repro.core.mmdr import MMDR
from repro.core.scalable import ScalableMMDR
from repro.data.synthetic import SyntheticSpec, generate_correlated_clusters
from repro.eval.reporting import format_table
from repro.storage.metrics import CostCounters


def _clustering_dataset(n=8000, d=16, clusters=6, seed=31):
    spec = SyntheticSpec(
        n_points=n,
        dimensionality=d,
        n_clusters=clusters,
        retained_dims=3,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.0,
    )
    return generate_correlated_clusters(
        spec, np.random.default_rng(seed)
    )


def test_ablation_lookup_table_and_activity(run_once):
    """§4.2: each optimization cuts distance computations; together they
    cut the most; quality (converged clustering) is unaffected."""

    def sweep():
        ds = _clustering_dataset()
        rows = []
        for label, use_lookup, use_activity in [
            ("none", False, False),
            ("lookup(k=3)", True, False),
            ("activity", False, True),
            ("lookup+activity", True, True),
        ]:
            counters = CostCounters()
            start = time.perf_counter()
            result = EllipticalKMeans(
                6,
                use_lookup=use_lookup,
                use_activity=use_activity,
                # A low threshold so the effect is visible even on data
                # where the inner loops converge in a handful of rounds.
                activity_threshold=3,
            ).fit(ds.points, np.random.default_rng(5), counters)
            rows.append(
                (
                    label,
                    counters.distance_computations,
                    f"{time.perf_counter() - start:.2f}",
                    result.n_clusters,
                    result.converged,
                )
            )
        return rows

    rows = run_once(sweep)
    print("\nAblation: elliptical k-means cost optimizations (§4.2)")
    print(
        format_table(
            ["variant", "dist comps", "seconds", "clusters", "converged"],
            rows,
        )
    )
    cost = {row[0]: row[1] for row in rows}
    assert cost["lookup(k=3)"] <= cost["none"]
    assert cost["lookup+activity"] <= cost["none"]
    # Quality: every variant still produces a multi-cluster model.
    assert all(row[3] >= 2 for row in rows)


def test_ablation_normalized_distance(run_once):
    """Definition 3.2's exact claim, isolated from clusterer dynamics: given
    the *true* cluster shapes, the raw Mahalanobis assignment lets the big
    elongated cluster steal a large share of the small cluster lying along
    its major axis; the normalized distance's volume penalty stops that."""

    def sweep():
        from repro.linalg.mahalanobis import ClusterShape

        rng = np.random.default_rng(9)
        big = rng.normal(0, [8.0, 0.5], (4000, 2))
        small = rng.normal((11.0, 0.0), 0.3, (600, 2))
        points = np.vstack([big, small])
        truth = np.repeat([0, 1], [4000, 600])
        shape_big = ClusterShape.from_points(big)
        shape_small = ClusterShape.from_points(small)
        rows = []
        for norm in ("none", "gaussian", "paper"):
            dist_big = shape_big.normalized_distance(points, norm)
            dist_small = shape_small.normalized_distance(points, norm)
            assigned_small = dist_small < dist_big
            stolen = int(((truth == 1) & ~assigned_small).sum())
            taken = int(((truth == 0) & assigned_small).sum())
            rows.append((norm, stolen, taken))
        return rows

    rows = run_once(sweep)
    print("\nAblation: raw vs normalized Mahalanobis (Def. 3.2)")
    print(
        format_table(
            ["normalization", "small pts stolen by big (of 600)",
             "big pts taken by small"],
            rows,
        )
    )
    stolen = {row[0]: row[1] for row in rows}
    # Raw distance lets the big cluster absorb a sizeable share...
    assert stolen["none"] > 100
    # ...both normalizations essentially stop the absorption.
    assert stolen["gaussian"] < 30
    assert stolen["paper"] < 30


def test_ablation_multi_level_vs_one_shot(run_once):
    """§4.1: starting the recursion at s_dim=1 finds the same model as
    clustering straight in the full space, at a fraction of the distance
    work (the low levels do the separating cheaply)."""

    def sweep():
        # 10 clusters x 3 intrinsic dims + separations: the union spans far
        # more than 16 dimensions, so the one-shot comparator cannot accept
        # everything as a single ellipsoid at its starting level.
        ds = _clustering_dataset(n=10_000, d=32, clusters=10)
        rows = []
        # The one-shot comparator clusters directly in a 16-dimensional
        # projection (s_dim = d would trivially accept the whole dataset as
        # one ellipsoid: nothing is eliminated, so MPE is zero).
        for label, start_dim in [("multi-level (s=1)", 1),
                                 ("one-shot (s=d/2)", 16)]:
            counters = CostCounters()
            config = MMDRConfig(initial_subspace_dim=start_dim)
            start = time.perf_counter()
            model = MMDR(config).fit(
                ds.points, np.random.default_rng(4), counters
            )
            rows.append(
                (
                    label,
                    model.n_subspaces,
                    model.outliers.size,
                    counters.distance_flops,
                    f"{time.perf_counter() - start:.2f}",
                )
            )
        return rows

    rows = run_once(sweep)
    print("\nAblation: multi-level recursion vs one-shot clustering")
    print(
        format_table(
            ["variant", "subspaces", "outliers", "distance flops", "seconds"],
            rows,
        )
    )
    multi, oneshot = rows
    # Comparable discovered structure...
    assert abs(multi[1] - oneshot[1]) <= 2
    # ...with less dimension-weighted distance work for the multi-level.
    assert multi[3] < oneshot[3]


def test_ablation_stream_fraction(run_once):
    """§4.3: smaller chunks mean more streams but the discovered model and
    the sequential I/O per pass stay stable."""

    def sweep():
        ds = _clustering_dataset(n=20_000, d=32, clusters=5)
        rows = []
        for epsilon in (0.02, 0.05, 0.2):
            counters = CostCounters()
            config = MMDRConfig(stream_fraction=epsilon)
            model = ScalableMMDR(config, min_stream_points=64).fit(
                ds.points, np.random.default_rng(4), counters
            )
            rows.append(
                (
                    epsilon,
                    model.stats.streams_processed,
                    model.n_subspaces,
                    model.outliers.size,
                    counters.sequential_reads,
                    f"{model.stats.fit_seconds:.2f}",
                )
            )
        return rows

    rows = run_once(sweep)
    print("\nAblation: Scalable MMDR stream fraction (epsilon)")
    print(
        format_table(
            ["epsilon", "streams", "subspaces", "outliers",
             "seq reads", "seconds"],
            rows,
        )
    )
    # Stream count tracks 1/epsilon.
    assert rows[0][1] > rows[1][1] > rows[2][1]
    # Model structure is stable across chunkings.
    subspace_counts = {row[2] for row in rows}
    assert max(subspace_counts) - min(subspace_counts) <= 1
    # Sequential reads are flat (constant number of passes).
    reads = [row[4] for row in rows]
    assert max(reads) < min(reads) * 1.5
