"""Figure 10 — per-query CPU cost of the indexing schemes.

Shape assertions (paper §6.2): the extended-iDistance schemes compare
1-dimensional keys while gLDR computes d-dimensional L-norms inside its
Hybrid trees, so gLDR's CPU cost sits far above iMMDR/iLDR and the gap
grows with dimensionality.  Wall-clock seconds are printed for reference;
the assertions run on the deterministic dimension-weighted work proxy so CI
noise cannot flake them.
"""

from repro.eval.reporting import format_series
from repro.experiments.fig10 import (
    cpu_series_colorhist,
    cpu_series_synthetic,
)
from repro.experiments.fig9 import FIG9_DIMS


def _check_cpu_shape(views):
    work = views["work"]
    imm, ild, gld = work["iMMDR"], work["iLDR"], work["gLDR"]
    # gLDR pays more CPU work than either iDistance scheme, everywhere.
    assert all(g > m for g, m in zip(gld, imm))
    assert all(g > l for g, l in zip(gld, ild))
    # The iDistance schemes stay well below the sequential scan.
    seq = work["SeqScan"]
    assert all(m < s for m, s in zip(imm, seq))


def test_fig10a_synthetic(run_once):
    views = run_once(cpu_series_synthetic)
    print("\nFigure 10a — CPU vs dims (synthetic)")
    print("  wall-clock seconds/query:")
    print(format_series("dims", list(FIG9_DIMS), views["seconds"]))
    print("  deterministic work proxy (dim-weighted ops/query):")
    print(format_series("dims", list(FIG9_DIMS), views["work"]))
    _check_cpu_shape(views)


def test_fig10b_colorhist(run_once):
    views = run_once(cpu_series_colorhist)
    print("\nFigure 10b — CPU vs dims (color histograms)")
    print("  wall-clock seconds/query:")
    print(format_series("dims", list(FIG9_DIMS), views["seconds"]))
    print("  deterministic work proxy (dim-weighted ops/query):")
    print(format_series("dims", list(FIG9_DIMS), views["work"]))
    work = views["work"]
    assert all(
        g > l for g, l in zip(work["gLDR"], work["iLDR"])
    )
