"""Shared benchmark configuration.

Benchmarks regenerate the paper's figures: each test runs one experiment
sweep exactly once (``benchmark.pedantic`` with a single round — the sweeps
are minutes-long model fits, not microbenchmarks), prints the same series
the paper plots, and asserts the claimed *shape* (method ordering, growth,
crossovers).  Set ``REPRO_BENCH_SCALE=full`` for the paper's dataset sizes.
"""

import numpy.ma  # noqa: F401  (pre-import: keeps lazy-loading out of timings)
import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable once under pytest-benchmark and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
