"""Figure 8 — precision vs. retained dimensionality.

Shape assertions (paper §6.1):

* every method's precision rises with the number of retained dimensions;
* MMDR is ahead of LDR and GDR (8a: clearly; 8b: best and least affected);
* the color-histogram dataset (8b) is harder than the synthetic one for
  every method at the top of the sweep.
"""

import numpy as np

from repro.eval.reporting import format_series
from repro.experiments.fig8 import run_fig8a, run_fig8b

_RESULTS = {}


def _non_decreasing(series, slack=0.05):
    return all(b >= a - slack for a, b in zip(series, series[1:]))


def test_fig8a_synthetic(run_once):
    sweep = run_once(run_fig8a)
    _RESULTS["8a"] = sweep
    print("\nFigure 8a — precision vs retained dims (synthetic)")
    print(format_series(sweep.x_label, sweep.x_values, sweep.series))

    for name, series in sweep.series.items():
        assert _non_decreasing(series), f"{name} not rising: {series}"
    mmdr, ldr, gdr = (
        sweep.series["MMDR"], sweep.series["LDR"], sweep.series["GDR"]
    )
    # MMDR leads at every point of the sweep (tiny noise tolerated).
    assert all(m >= l - 0.03 for m, l in zip(mmdr, ldr))
    assert mmdr[-1] > ldr[-1] + 0.05
    assert mmdr[-1] > gdr[-1] + 0.05
    # The sweep is information-limited: even at max dims nobody is exact,
    # and the baselines stay clearly below 90%.
    assert ldr[-1] < 0.9
    assert gdr[-1] < 0.9


def test_fig8b_colorhist(run_once):
    sweep = run_once(run_fig8b)
    print("\nFigure 8b — precision vs retained dims (color histograms)")
    print(format_series(sweep.x_label, sweep.x_values, sweep.series))

    for name, series in sweep.series.items():
        assert _non_decreasing(series), f"{name} not rising: {series}"
    mmdr, ldr, gdr = (
        sweep.series["MMDR"], sweep.series["LDR"], sweep.series["GDR"]
    )
    # MMDR performs best (ties tolerated within noise) at the top of the
    # sweep, and GDR is far behind on the weakly correlated histograms.
    assert mmdr[-1] >= ldr[-1] - 0.02
    assert mmdr[-1] > gdr[-1] + 0.1
    assert np.mean(mmdr[1:]) >= np.mean(ldr[1:]) - 0.02
