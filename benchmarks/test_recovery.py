"""Recovery cost: how long a crash costs, and what checkpoints buy.

Emits a versioned :class:`repro.bench.BenchReport` (written to
``benchmarks/out/BENCH_recovery.report.json``); the flat
``BENCH_recovery.json`` at the repo root is kept as the
:func:`repro.bench.recovery_view` of that report

    {"n_points", "n_ops", "wal_bytes", "update_s", "update_ops_per_s",
     "checkpoint_s", "recover_s", "recover_after_checkpoint_s",
     "records_replayed", "records_replayed_after_checkpoint"}

on a 10k-point workload with 200 online updates: time the WAL-protected
update stream, recovery over the full log, and recovery right after a
fresh checkpoint (which must replay ~nothing).  The assertions pin the
*contract*, not the wall clock — recovery replays every committed op,
checkpointing drops replay work to zero, and the recovered index's KNN
answers fingerprint identically to the live index's.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.bench import BenchReport, recovery_view, result_fingerprint
from repro.data.synthetic import SyntheticSpec, generate_correlated_clusters
from repro.data.workload import sample_queries
from repro.index.idistance import ExtendedIDistance
from repro.recovery import checkpoint, make_update_workload, recover
from repro.recovery.harness import apply_op
from repro.reduction import MMDRReducer
from repro.storage.wal import WriteAheadLog

REPO_ROOT = Path(__file__).resolve().parents[1]
OUT_DIR = REPO_ROOT / "benchmarks" / "out"


def _fingerprint_knn(index, workload):
    id_rows, dist_rows = [], []
    for query in workload.queries:
        index.reset_cache()
        res = index.knn(query, workload.k)
        id_rows.append(res.ids)
        dist_rows.append(res.distances)
    return result_fingerprint(np.vstack(id_rows), np.vstack(dist_rows))


def test_recovery_time_and_report(tmp_path):
    spec = SyntheticSpec(
        n_points=10_000,
        dimensionality=32,
        n_clusters=4,
        retained_dims=6,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    data = generate_correlated_clusters(spec, np.random.default_rng(42))
    reduced = MMDRReducer().reduce(data.points, np.random.default_rng(0))
    ops = make_update_workload(
        data.points,
        reduced.n_points,
        np.random.default_rng(1),
        n_inserts=120,
        n_deletes=80,
    )
    workload = sample_queries(
        data.points, 20, np.random.default_rng(5), k=10, method="perturbed"
    )

    index = ExtendedIDistance(reduced)
    wal = WriteAheadLog(tmp_path / "wal.log")
    index.enable_wal(wal)
    checkpoint(index, tmp_path / "ckpt0")

    t0 = time.perf_counter()
    for op in ops:
        apply_op(index, op)
    update_s = time.perf_counter() - t0
    wal.flush()
    wal_bytes = (tmp_path / "wal.log").stat().st_size
    fp_updated = _fingerprint_knn(index, workload)

    t0 = time.perf_counter()
    recovered, rec_report = recover(tmp_path / "wal.log")
    recover_s = time.perf_counter() - t0
    assert rec_report.metas_applied == len(ops)
    assert recovered.live_count == index.live_count
    fp_recovered = _fingerprint_knn(recovered, workload)
    assert fp_recovered == fp_updated, (
        "recovered index answers diverge from the live index"
    )

    t0 = time.perf_counter()
    checkpoint(index, tmp_path / "ckpt1")
    checkpoint_s = time.perf_counter() - t0
    wal.close()

    t0 = time.perf_counter()
    _, report_after = recover(tmp_path / "wal.log")
    recover_after_s = time.perf_counter() - t0
    assert report_after.metas_applied == 0  # all state is in the snapshot

    report = BenchReport(
        name="recovery_10k",
        spec={
            "n_points": spec.n_points,
            "dimensionality": spec.dimensionality,
            "n_clusters": spec.n_clusters,
            "retained_dims": spec.retained_dims,
            "scheme": "iMMDR",
            "n_inserts": 120,
            "n_deletes": 80,
            "data_seed": 42,
            "reduce_seed": 0,
            "update_seed": 1,
            "query_seed": 5,
        },
        counters={
            "n_points": spec.n_points,
            "n_ops": len(ops),
            "wal_bytes": wal_bytes,
            "records_replayed": rec_report.records_scanned,
            "records_replayed_after_checkpoint": (
                report_after.records_scanned
            ),
            "metas_applied": rec_report.metas_applied,
            "live_count": int(index.live_count),
        },
        advisory={
            "update_s": round(update_s, 4),
            "update_ops_per_s": round(len(ops) / update_s, 1),
            "checkpoint_s": round(checkpoint_s, 4),
            "recover_s": round(recover_s, 4),
            "recover_after_checkpoint_s": round(recover_after_s, 4),
        },
        fingerprints={"updated": fp_updated, "recovered": fp_recovered},
    )
    report.write(OUT_DIR / "BENCH_recovery.report.json")
    view = recovery_view(report)
    out = REPO_ROOT / "BENCH_recovery.json"
    out.write_text(json.dumps(view, indent=2, sort_keys=True) + "\n")
    print(
        "\nrecovery: "
        + ", ".join(f"{k}={v}" for k, v in sorted(view.items()))
    )
    assert view["records_replayed_after_checkpoint"] < 5
