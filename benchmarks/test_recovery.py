"""Recovery cost: how long a crash costs, and what checkpoints buy.

Records ``BENCH_recovery.json`` at the repo root with the schema

    {"n_points", "n_ops", "wal_bytes", "update_s", "update_ops_per_s",
     "checkpoint_s", "recover_s", "recover_after_checkpoint_s",
     "records_replayed", "records_replayed_after_checkpoint"}

on a 10k-point workload with 200 online updates: time the WAL-protected
update stream, recovery over the full log, and recovery right after a
fresh checkpoint (which must replay ~nothing).  The assertions pin the
*contract*, not the wall clock — recovery replays every committed op, and
checkpointing drops replay work to zero.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.data.synthetic import SyntheticSpec, generate_correlated_clusters
from repro.index.idistance import ExtendedIDistance
from repro.recovery import checkpoint, make_update_workload, recover
from repro.recovery.harness import apply_op
from repro.reduction import MMDRReducer
from repro.storage.wal import WriteAheadLog

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_recovery_time_and_report(tmp_path):
    spec = SyntheticSpec(
        n_points=10_000,
        dimensionality=32,
        n_clusters=4,
        retained_dims=6,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    data = generate_correlated_clusters(spec, np.random.default_rng(42))
    reduced = MMDRReducer().reduce(data.points, np.random.default_rng(0))
    ops = make_update_workload(
        data.points,
        reduced.n_points,
        np.random.default_rng(1),
        n_inserts=120,
        n_deletes=80,
    )

    index = ExtendedIDistance(reduced)
    wal = WriteAheadLog(tmp_path / "wal.log")
    index.enable_wal(wal)
    checkpoint(index, tmp_path / "ckpt0")

    t0 = time.perf_counter()
    for op in ops:
        apply_op(index, op)
    update_s = time.perf_counter() - t0
    wal.flush()
    wal_bytes = (tmp_path / "wal.log").stat().st_size

    t0 = time.perf_counter()
    recovered, report = recover(tmp_path / "wal.log")
    recover_s = time.perf_counter() - t0
    assert report.metas_applied == len(ops)
    assert recovered.live_count == index.live_count

    t0 = time.perf_counter()
    checkpoint(index, tmp_path / "ckpt1")
    checkpoint_s = time.perf_counter() - t0
    wal.close()

    t0 = time.perf_counter()
    _, report_after = recover(tmp_path / "wal.log")
    recover_after_s = time.perf_counter() - t0
    assert report_after.metas_applied == 0  # all state is in the snapshot

    bench = {
        "n_points": spec.n_points,
        "n_ops": len(ops),
        "wal_bytes": wal_bytes,
        "update_s": round(update_s, 4),
        "update_ops_per_s": round(len(ops) / update_s, 1),
        "checkpoint_s": round(checkpoint_s, 4),
        "recover_s": round(recover_s, 4),
        "recover_after_checkpoint_s": round(recover_after_s, 4),
        "records_replayed": report.records_scanned,
        "records_replayed_after_checkpoint": report_after.records_scanned,
    }
    out = REPO_ROOT / "BENCH_recovery.json"
    out.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(
        "\nrecovery: "
        + ", ".join(f"{k}={v}" for k, v in sorted(bench.items()))
    )
    assert bench["records_replayed_after_checkpoint"] < 5
