"""Continuous ingestion: drift-triggered reorg + crash + rolling swap.

Emits a versioned :class:`repro.bench.BenchReport` (written to
``benchmarks/out/BENCH_ingest.report.json``); the flat ``BENCH_ingest.json``
at the repo root is the :func:`repro.bench.ingest_view` of that report

    {"n_points", "n_ops", "reorgs", "final_generation",
     "crash_schedules", "recovered_old", "recovered_new",
     "swap_requests", "swap_partial", "ingest_ops_per_s", "reorg_s"}

Rates are **advisory** (shared-CPU wall clock proves nothing); the gates
are identity and atomicity:

* live leg — a seeded drift stream fires the trigger and the auto reorg,
  and the post-swap answers fingerprint-match a fresh build over the
  same committed mutation stream, for all three schemes;
* crash leg — a sampled sweep of crashpoints over the build → swap →
  truncate sequence always recovers to exactly one generation;
* served leg — a rolling generational swap under sustained open-loop
  load: every non-partial answer matches the old or the new generation
  exactly (never a blend), and post-swap answers match a fresh
  single-node build of the new generation.
"""

import json
import multiprocessing
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import BenchReport, ingest_view, result_fingerprint
from repro.bench.spec import INDEX_SCHEMES
from repro.data.synthetic import SyntheticSpec, generate_correlated_clusters
from repro.data.workload import sample_queries
from repro.ingest import (
    INGEST_SCHEMES,
    IngestPipeline,
    batch_fingerprint,
    build_from_vectors,
    swap_crash_sweep,
    translate_ids,
)
from repro.reduction import MMDRReducer
from repro.serve import Router, RouterConfig, ShardPlanner, Supervisor
from repro.serve.planner import mode_for_scheme
from repro.serve.router import canonicalize_rows

REPO_ROOT = Path(__file__).resolve().parents[1]
OUT_DIR = REPO_ROOT / "benchmarks" / "out"

N_POINTS = 240
DIMS = 8
N_INSERTS = 40
N_DELETES = 8
K = 5
N_SHARDS = 3
N_REQUESTS = 30
ARRIVAL_RATE_HZ = 60.0
CRASH_SCHEDULES = 10

pytestmark = pytest.mark.ingest_smoke

#: Cross-leg numbers accumulated into the single report written by the
#: served leg (the legs share one artifact, like the paper's Table 4
#: shares one workload).
RESULTS = {}


@pytest.fixture(scope="module")
def reduce_fn():
    def fn(points):
        return MMDRReducer().reduce(points, np.random.default_rng(0))

    return fn


@pytest.fixture(scope="module")
def base_points():
    spec = SyntheticSpec(
        n_points=N_POINTS,
        dimensionality=DIMS,
        n_clusters=2,
        retained_dims=2,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    return generate_correlated_clusters(
        spec, np.random.default_rng(42)
    ).points


@pytest.fixture(scope="module")
def drift_ops(base_points, reduce_fn):
    """Inserts at cluster members plus fixed-norm jitter orthogonal to the
    member's fitted subspace (drives the live MPE without leaving the
    B+-tree key space), plus a few deletes."""
    rng = np.random.default_rng(1234)
    subspaces = reduce_fn(base_points).subspaces
    ops = []
    for i in range(N_INSERTS):
        sub = subspaces[i % len(subspaces)]
        member = base_points[int(sub.member_ids[i % sub.member_ids.size])]
        jitter = rng.normal(0.0, 1.0, DIMS)
        jitter -= sub.basis @ (sub.basis.T @ jitter)
        jitter *= 0.15 / np.linalg.norm(jitter)
        ops.append(("insert", member + jitter, N_POINTS + i, 5.0))
    ops += [("delete", rid) for rid in range(N_DELETES)]
    return ops


@pytest.fixture(scope="module")
def queries(base_points):
    return sample_queries(
        base_points, 6, np.random.default_rng(5), k=K, method="perturbed"
    ).queries


def test_drift_stream_reorgs_to_a_fresh_equivalent_build(
    base_points, drift_ops, queries, reduce_fn, tmp_path
):
    t0 = time.perf_counter()
    reorg_s = 0.0
    for scheme in INGEST_SCHEMES:
        pipe, _ = IngestPipeline.create(
            tmp_path / scheme, base_points, reduce_fn, scheme,
            auto_reorg=True,
        )
        try:
            trigger = pipe.apply_batch(drift_ops, label=f"bench_{scheme}")
            assert trigger.fired, f"{scheme}: drift stream never triggered"
            assert pipe.generation == 2, f"{scheme}: no reorg happened"
            assert pipe.reorg_reports
            reorg_s += pipe.reorg_reports[-1].wall_seconds

            index, _, rid_map = build_from_vectors(
                pipe.live_vectors(), reduce_fn, scheme
            )
            ref = index.knn_batch(queries, K)
            got = pipe.knn_batch(queries, K)
            assert batch_fingerprint(got.ids, got.distances) == (
                batch_fingerprint(translate_ids(ref.ids, rid_map),
                                  ref.distances)
            ), f"{scheme}: post-reorg answers diverge from a fresh build"
            index.store.close()
        finally:
            pipe.close()
    wall = time.perf_counter() - t0
    n_ops = len(drift_ops) * len(INGEST_SCHEMES)
    RESULTS["live"] = {
        "n_ops": len(drift_ops),
        "reorgs": len(INGEST_SCHEMES),
        "final_generation": 2,
        "ingest_ops_per_s": round(n_ops / wall, 1),
        "reorg_s": round(reorg_s, 3),
    }


def test_sampled_swap_crashpoints_recover_to_one_generation(
    base_points, drift_ops, queries, reduce_fn, tmp_path
):
    report = swap_crash_sweep(
        tmp_path,
        base_points,
        drift_ops,
        queries,
        k=K,
        reduce_fn=reduce_fn,
        scheme="SeqScan",
        max_schedules=CRASH_SCHEDULES,
    )
    assert report.recovered_old + report.recovered_new == report.schedules
    assert {o.phase for o in report.outcomes} == {"before", "after"}
    RESULTS["crash"] = {
        "crash_schedules": report.schedules,
        "recovered_old": report.recovered_old,
        "recovered_new": report.recovered_new,
    }


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard workers require the fork start method",
)
def test_rolling_swap_under_load_and_report(
    base_points, drift_ops, queries, reduce_fn, tmp_path
):
    assert {"live", "crash"} <= RESULTS.keys(), (
        "the live and crash legs must run first (same pytest invocation)"
    )
    scheme = "SeqScan"
    old_reduced = reduce_fn(base_points)

    # The post-ingest dataset: the same committed mutation stream the
    # live leg applied, re-clustered from scratch.
    live = {i: base_points[i] for i in range(N_DELETES, N_POINTS)}
    for op in drift_ops:
        if op[0] == "insert":
            live[op[2]] = op[1]
    new_points = np.stack([live[r] for r in sorted(live)])
    new_reduced = reduce_fn(new_points)

    def fp(ids, dists):
        return result_fingerprint(*canonicalize_rows(ids, dists))

    res = INDEX_SCHEMES[scheme](old_reduced).knn_batch(queries, K)
    old_fp = fp(res.ids, res.distances)
    res = INDEX_SCHEMES[scheme](new_reduced).knn_batch(queries, K)
    new_fp = fp(res.ids, res.distances)
    assert old_fp != new_fp, "swap would be vacuous on this workload"

    plan = ShardPlanner(N_SHARDS, mode_for_scheme(scheme)).plan(old_reduced)
    supervisor = Supervisor(plan, scheme, tmp_path / "gen0")
    router = Router(supervisor, RouterConfig(deadline_s=30.0))
    supervisor.start()

    offsets = np.cumsum(
        np.random.default_rng(11).exponential(
            1.0 / ARRIVAL_RATE_HZ, N_REQUESTS
        )
    )
    lock = threading.Lock()
    partials, blends = [], []

    def fire(offset, t0):
        delay = t0 + offset - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        result = router.knn(queries, K)
        got = None if result.partial else fp(result.ids, result.distances)
        with lock:
            if result.partial:
                partials.append(result.missing_shards)
            elif got not in (old_fp, new_fp):
                blends.append(got)

    try:
        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=fire, args=(off, t0)) for off in offsets
        ]
        for t in threads:
            t.start()
        new_plan = ShardPlanner(N_SHARDS, mode_for_scheme(scheme)).plan(
            new_reduced
        )
        swap = router.rolling_swap(new_plan, tmp_path / "gen1")
        for t in threads:
            t.join()

        assert swap.shards_swapped == tuple(supervisor.shard_ids)
        final = router.knn(queries, K)
        assert not final.partial
        final_fp = fp(final.ids, final.distances)
        swaps = router.metrics.counter("serve.generation_swaps").value
    finally:
        router.close()

    # Mid-roll reads may be partial (a draining shard is flagged, never
    # silently dropped) but a non-partial answer blending generations
    # would be a correctness hole.
    assert not blends, "non-partial requests blended old and new answers"
    assert final_fp == new_fp, (
        "post-swap merged answers diverge from a fresh single-node build"
    )
    assert swaps == N_SHARDS

    report = BenchReport(
        name="ingest_240",
        spec={
            "n_points": N_POINTS,
            "dimensionality": DIMS,
            "scheme_live": "all",
            "scheme_served": scheme,
            "n_inserts": N_INSERTS,
            "n_deletes": N_DELETES,
            "n_shards": N_SHARDS,
            "n_requests": N_REQUESTS,
            "arrival_rate_hz": ARRIVAL_RATE_HZ,
            "k": K,
            "crash_schedules": CRASH_SCHEDULES,
            "data_seed": 42,
            "reduce_seed": 0,
            "stream_seed": 1234,
            "query_seed": 5,
            "arrival_seed": 11,
        },
        counters={
            "n_points": N_POINTS,
            "n_ops": RESULTS["live"]["n_ops"],
            "reorgs": RESULTS["live"]["reorgs"],
            "final_generation": RESULTS["live"]["final_generation"],
            "crash_schedules": RESULTS["crash"]["crash_schedules"],
            "recovered_old": RESULTS["crash"]["recovered_old"],
            "recovered_new": RESULTS["crash"]["recovered_new"],
            "swap_requests": N_REQUESTS,
            "swap_partial": len(partials),
        },
        advisory={
            "ingest_ops_per_s": RESULTS["live"]["ingest_ops_per_s"],
            "reorg_s": RESULTS["live"]["reorg_s"],
            "swap_wall_s": round(swap.wall_seconds, 3),
        },
        fingerprints={
            "old_generation": old_fp,
            "new_generation": new_fp,
            "post_swap": final_fp,
        },
    )
    report.write(OUT_DIR / "BENCH_ingest.report.json")
    view = ingest_view(report)
    out = REPO_ROOT / "BENCH_ingest.json"
    out.write_text(json.dumps(view, indent=2, sort_keys=True) + "\n")
    print(
        "\ningest: " + ", ".join(f"{k}={v}" for k, v in sorted(view.items()))
    )
