"""Sharded serving: merged-answer identity gate + sustained-load numbers.

Emits a versioned :class:`repro.bench.BenchReport` (written to
``benchmarks/out/BENCH_serve.report.json``); the flat ``BENCH_serve.json``
at the repo root is the :func:`repro.bench.serve_view` of that report

    {"n_shards", "n_requests", "n_partial", "respawns", "retries",
     "qps", "p50_ms", "p99_ms"}

The latency/QPS numbers are **advisory** (open-loop load with seeded
exponential inter-arrivals on a shared-CPU runner proves nothing about
wall clock); the *gate* is answer identity: on every non-degraded request
the scatter-gathered global top-K must fingerprint identically to the
single-node index, for all three schemes — including after a seeded
SIGKILL of one worker mid-bench and its snapshot+WAL recovery.
"""

import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import BenchReport, result_fingerprint, serve_view
from repro.bench.spec import INDEX_SCHEMES
from repro.data.synthetic import SyntheticSpec, generate_correlated_clusters
from repro.data.workload import sample_queries
from repro.reduction import MMDRReducer
from repro.serve import (
    Router,
    RouterConfig,
    ShardPlanner,
    Supervisor,
    WorkerFaultSpec,
)
from repro.serve.planner import mode_for_scheme
from repro.serve.router import canonicalize_rows

import multiprocessing

REPO_ROOT = Path(__file__).resolve().parents[1]
OUT_DIR = REPO_ROOT / "benchmarks" / "out"

N_SHARDS = 3
N_REQUESTS = 40
ARRIVAL_RATE_HZ = 60.0
K = 5

pytestmark = [
    pytest.mark.serve_smoke,
    pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="shard workers require the fork start method",
    ),
]


@pytest.fixture(scope="module")
def dataset():
    spec = SyntheticSpec(
        n_points=2_000,
        dimensionality=16,
        n_clusters=3,
        retained_dims=4,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    points = generate_correlated_clusters(
        spec, np.random.default_rng(42)
    ).points
    reduced = MMDRReducer().reduce(points, np.random.default_rng(0))
    queries = sample_queries(
        points, 8, np.random.default_rng(5), k=K, method="perturbed"
    ).queries
    return reduced, queries


def single_node_rows(scheme, reduced, queries):
    res = INDEX_SCHEMES[scheme](reduced).knn_batch(queries, K)
    return canonicalize_rows(res.ids, res.distances)


def make_cluster(reduced, scheme, root, fault_specs=None, config=None):
    plan = ShardPlanner(N_SHARDS, mode_for_scheme(scheme)).plan(reduced)
    supervisor = Supervisor(plan, scheme, root)
    for shard_id, spec in (fault_specs or {}).items():
        supervisor.set_fault_spec(shard_id, spec)
    router = Router(
        supervisor,
        config if config is not None else RouterConfig(deadline_s=30.0),
    )
    supervisor.start()
    return router


def test_merged_fingerprint_matches_single_node_all_schemes(
    dataset, tmp_path
):
    reduced, queries = dataset
    for scheme in INDEX_SCHEMES:
        ids, dists = single_node_rows(scheme, reduced, queries)
        baseline = result_fingerprint(ids, dists)
        router = make_cluster(reduced, scheme, tmp_path / scheme)
        try:
            result = router.knn(queries, K)
        finally:
            router.close()
        assert not result.partial
        merged = result_fingerprint(
            *canonicalize_rows(result.ids, result.distances)
        )
        assert merged == baseline, (
            f"{scheme}: merged shard answers diverge from single-node"
        )


def test_sustained_load_with_midrun_crash_and_report(dataset, tmp_path):
    reduced, queries = dataset
    scheme = "SeqScan"
    base_ids, base_dists = single_node_rows(scheme, reduced, queries)
    baseline = result_fingerprint(base_ids, base_dists)

    # Shard 1's worker is SIGKILLed on its 10th request — mid-bench.  The
    # router must respawn it (snapshot + WAL recovery) and every request
    # must still come back exact, or be explicitly flagged partial.
    router = make_cluster(
        reduced,
        scheme,
        tmp_path / "load",
        fault_specs={1: WorkerFaultSpec(kill_on_request=10)},
        config=RouterConfig(deadline_s=30.0, max_inflight=64),
    )
    offsets = np.cumsum(
        np.random.default_rng(11).exponential(
            1.0 / ARRIVAL_RATE_HZ, N_REQUESTS
        )
    )
    lock = threading.Lock()
    latencies, partials, mismatches = [], [], []

    def fire(offset, t0):
        delay = t0 + offset - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        start = time.perf_counter()
        result = router.knn(queries, K)
        wall = time.perf_counter() - start
        if result.partial:
            with lock:
                partials.append(result.missing_shards)
                latencies.append(wall)
            return
        ids, dists = canonicalize_rows(result.ids, result.distances)
        ok = np.array_equal(ids, base_ids) and np.array_equal(
            dists, base_dists
        )
        with lock:
            latencies.append(wall)
            if not ok:
                mismatches.append(offset)

    try:
        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=fire, args=(off, t0)) for off in offsets
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_total = time.perf_counter() - t0

        # Post-recovery batch: the respawned shard answers from its
        # recovered state, and the merged result must be exact again.
        final = router.knn(queries, K)
        assert not final.partial
        final_fp = result_fingerprint(
            *canonicalize_rows(final.ids, final.distances)
        )
        counters = {
            name: c.value for name, c in router.metrics.counters.items()
        }
    finally:
        router.close()

    assert not mismatches, (
        "non-partial requests returned rows diverging from single-node"
    )
    assert final_fp == baseline, (
        "post-recovery merged answers diverge from single-node"
    )
    assert counters.get("serve.respawns", 0) >= 1, (
        "the seeded SIGKILL never triggered a respawn"
    )
    assert len(latencies) == N_REQUESTS

    lat_ms = np.asarray(latencies) * 1e3
    report = BenchReport(
        name="serve_2k",
        spec={
            "n_points": reduced.n_points,
            "dimensionality": 16,
            "scheme": scheme,
            "n_shards": N_SHARDS,
            "n_requests": N_REQUESTS,
            "arrival_rate_hz": ARRIVAL_RATE_HZ,
            "k": K,
            "kill_shard": 1,
            "kill_on_request": 10,
            "data_seed": 42,
            "reduce_seed": 0,
            "query_seed": 5,
            "arrival_seed": 11,
        },
        counters={
            "n_shards": N_SHARDS,
            "n_requests": N_REQUESTS,
            "n_partial": len(partials),
            "respawns": int(counters.get("serve.respawns", 0)),
            "retries": int(counters.get("serve.retries", 0)),
        },
        advisory={
            "qps": round(N_REQUESTS / wall_total, 1),
            "p50_ms": round(float(np.percentile(lat_ms, 50)), 2),
            "p99_ms": round(float(np.percentile(lat_ms, 99)), 2),
            "wall_s": round(wall_total, 3),
        },
        fingerprints={
            "single_node": baseline,
            "merged_post_recovery": final_fp,
        },
    )
    report.write(OUT_DIR / "BENCH_serve.report.json")
    view = serve_view(report)
    out = REPO_ROOT / "BENCH_serve.json"
    out.write_text(json.dumps(view, indent=2, sort_keys=True) + "\n")
    print(
        "\nserve: " + ", ".join(f"{k}={v}" for k, v in sorted(view.items()))
    )
