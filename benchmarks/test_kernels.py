"""Kernel-layer microbenchmarks: reference numpy vs the fast backend.

Times each backend-dispatched kernel on query-path-shaped problems and
the cold sequential page scan on both physical stores, and writes the
results through ``repro.bench``: a versioned report at
``benchmarks/out/BENCH_kernels.report.json`` plus the flat
``BENCH_kernels.json`` at the repo root.

All wall-clock numbers are **advisory** (min-of-N, machine-dependent,
never gated); what the test *asserts* is the contract that makes the
numbers comparable at all — the fast backend reproduces the reference
answers (bit-identical when numba is absent and the blocked fallback
resolves, within the fingerprint quantum when it is compiled).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import BenchReport, result_fingerprint
from repro.linalg import backend, kernels
from repro.linalg.backend import (
    get_kernel_backend,
    kernel_backend_info,
    set_kernel_backend,
)
from repro.storage.buffer import BufferPool
from repro.storage.metrics import CostCounters
from repro.storage.mmap_store import MmapPageStore
from repro.storage.pager import PageStore

REPO_ROOT = Path(__file__).resolve().parents[1]
OUT_DIR = REPO_ROOT / "benchmarks" / "out"

#: Query-path-shaped problem: a few hundred queries against a few
#: thousand reduced vectors at the dimensionalities the indexes use.
N_POINTS = 20_000
N_QUERIES = 256
DIM = 16
REPEATS = 5


def _best_of(fn, *args):
    """Min-of-N wall seconds (and the last result, for verification)."""
    best, result = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def _under(backend_name, fn, *args):
    previous = set_kernel_backend(backend_name)
    try:
        return _best_of(fn, *args)
    finally:
        set_kernel_backend(previous)


def _scan_seconds(store_factory, n_pages=2000, blob_bytes=3500):
    """Cold sequential read of every page via a too-small buffer pool."""
    counters = CostCounters()
    store = store_factory(counters)
    payload = np.arange(blob_bytes // 8, dtype=np.float64)
    pids = [store.allocate(payload, blob_bytes) for _ in range(n_pages)]
    pool = BufferPool(store, 32, counters)
    try:
        best = float("inf")
        for _ in range(REPEATS):
            pool.clear()
            start = time.perf_counter()
            for pid in pids:
                pool.read(pid)
            best = min(best, time.perf_counter() - start)
        assert counters.physical_reads == REPEATS * n_pages
        return best
    finally:
        close = getattr(store, "close", None)
        if close is not None:
            close()


@pytest.mark.kernel_smoke
def test_kernel_microbench_and_report():
    rng = np.random.default_rng(42)
    points = rng.standard_normal((N_POINTS, DIM))
    queries = rng.standard_normal((N_QUERIES, DIM))
    positions = rng.integers(0, N_POINTS, size=8 * N_POINTS)
    query_of_entry = np.sort(
        rng.integers(0, N_QUERIES, size=positions.size)
    )

    advisory = {}

    t_ref, ref_batch = _under(
        "numpy", backend.batch_l2_rows, points, queries
    )
    t_fast, fast_batch = _under(
        "numba", backend.batch_l2_rows, points, queries
    )
    advisory["batch_l2_rows_numpy_s"] = t_ref
    advisory["batch_l2_rows_fast_s"] = t_fast
    advisory["batch_l2_rows_speedup"] = t_ref / t_fast

    t_ref, ref_flat = _under(
        "numpy", backend.flat_l2, points, positions, queries, query_of_entry
    )
    t_fast, fast_flat = _under(
        "numba", backend.flat_l2, points, positions, queries, query_of_entry
    )
    advisory["flat_l2_numpy_s"] = t_ref
    advisory["flat_l2_fast_s"] = t_fast
    advisory["flat_l2_speedup"] = t_ref / t_fast

    n_clusters = 8
    centroids = rng.standard_normal((n_clusters, DIM))
    chol_invs = np.empty((n_clusters, DIM, DIM))
    for c in range(n_clusters):
        a = rng.standard_normal((DIM, DIM))
        chol_invs[c] = np.linalg.inv(
            np.linalg.cholesky(a @ a.T + DIM * np.eye(DIM))
        )
    penalties = rng.uniform(0.5, 1.5, size=n_clusters)
    t_ref, ref_mahal = _under(
        "numpy",
        backend.batch_mahalanobis_rows,
        points, centroids, chol_invs, penalties,
    )
    t_fast, fast_mahal = _under(
        "numba",
        backend.batch_mahalanobis_rows,
        points, centroids, chol_invs, penalties,
    )
    advisory["batch_mahalanobis_numpy_s"] = t_ref
    advisory["batch_mahalanobis_fast_s"] = t_fast
    advisory["batch_mahalanobis_speedup"] = t_ref / t_fast

    seq = rng.integers(0, 512, size=200_000)
    t_ref, ref_lru = _under(
        "numpy", backend.cold_lru_physical_reads, seq, 64
    )
    t_fast, fast_lru = _under(
        "numba", backend.cold_lru_physical_reads, seq, 64
    )
    advisory["cold_lru_numpy_s"] = t_ref
    advisory["cold_lru_fast_s"] = t_fast
    advisory["cold_lru_speedup"] = t_ref / t_fast

    t_memory = _scan_seconds(PageStore)
    t_mmap = _scan_seconds(MmapPageStore)
    advisory["cold_scan_memory_s"] = t_memory
    advisory["cold_scan_mmap_s"] = t_mmap
    advisory["cold_scan_mmap_over_memory"] = t_mmap / t_memory

    # The gate that makes the advisory numbers meaningful: both backends
    # answered the same questions identically (to the fingerprint
    # quantum; exact for the integer LRU model).
    row_ids = np.tile(np.arange(N_POINTS), (N_QUERIES, 1))
    assert result_fingerprint(row_ids, ref_batch) == result_fingerprint(
        row_ids, fast_batch
    )
    flat_ids = np.arange(positions.size)
    assert result_fingerprint(flat_ids, ref_flat) == result_fingerprint(
        flat_ids, fast_flat
    )
    np.testing.assert_allclose(fast_mahal, ref_mahal, rtol=0, atol=1e-9)
    assert ref_lru == fast_lru

    info = kernel_backend_info()
    if info["compiled"]:
        # The acceptance bar for the compiled backend (the [fast] CI
        # entry): the fused kernels clear 2x over the numpy reference.
        assert advisory["batch_mahalanobis_speedup"] >= 2.0, advisory
        assert advisory["flat_l2_speedup"] >= 2.0, advisory
    report = BenchReport(
        name="kernels",
        spec={
            "n_points": N_POINTS,
            "n_queries": N_QUERIES,
            "dimensionality": DIM,
            "repeats": REPEATS,
            "fast_module": info["fast_module"],
            "compiled": info["compiled"],
            "active_backend": get_kernel_backend(),
        },
        counters={
            "flat_entries": int(positions.size),
            "lru_sequence": int(seq.size),
            "lru_physical_reads": int(ref_lru),
        },
        advisory={key: float(value) for key, value in advisory.items()},
        fingerprints={
            "batch_l2": result_fingerprint(row_ids, ref_batch),
            "flat_l2": result_fingerprint(flat_ids, ref_flat),
        },
    )
    report.write(OUT_DIR / "BENCH_kernels.report.json")
    flat = {
        **{k: float(v) for k, v in advisory.items()},
        "compiled": bool(info["compiled"]),
    }
    out = REPO_ROOT / "BENCH_kernels.json"
    out.write_text(json.dumps(flat, indent=2, sort_keys=True) + "\n")
    print(
        "\nkernels ("
        + ("compiled" if info["compiled"] else "blocked fallback")
        + "): "
        + ", ".join(
            f"{key}={advisory[key]:.2f}"
            for key in sorted(advisory)
            if key.endswith(("speedup", "over_memory"))
        )
    )
